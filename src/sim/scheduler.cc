#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "deque/mailbox.h"
#include "sched/interference_core.h"
#include "sched/shed_core.h"
#include "sim/serving.h"
#include "support/panic.h"

namespace numaws::sim {

namespace {

/** Execution state of one frame (the full-frame bookkeeping). */
struct FrameState
{
    bool stolen = false;    ///< stolen since its last successful sync
    bool suspended = false; ///< parked at a nontrivial sync
    int32_t joinCount = 0;  ///< outstanding stolen-away children
    uint32_t resumeItem = 0;
    uint32_t pushCount = 0; ///< PUSHBACK attempts (lifetime, per paper)
};

/** A stealable execution state: frame + next item. */
struct Continuation
{
    FrameId frame = kNoFrame;
    uint32_t item = 0;

    bool valid() const { return frame != kNoFrame; }
};

enum class NextAction : uint8_t { Steal, CheckParent };

/** Time bucket a step's cost is charged to. */
enum class Charge : uint8_t { Work, Sched, Idle };

struct CoreState
{
    double clock = 0.0;
    Continuation cur;
    std::deque<Continuation> deq; ///< back == tail (owner), front == head
    /** Parked frames, oldest first; bounded by the policy's
     * mailboxCapacity (the paper's single-entry mailbox is capacity 1). */
    std::deque<Continuation> mailbox;
    /**
     * Extras from a batched remote steal, already promoted, drained in
     * the scheduling loop before the next steal attempt. Private to this
     * core: the sim's deque entries must stay an ancestor chain of the
     * current task (stepReturn asserts it), so foreign continuations may
     * not enter `deq`.
     */
    std::deque<Continuation> overflow;
    /**
     * Checkpointed continuations of preempted jobs, innermost last.
     * When a Spawn-boundary yield stashes the current continuation
     * here, its already-pushed deque entries stay stealable (they are
     * the chain's ancestors — thieves drain them front-first exactly
     * as usual), while this private stack marks where *this* core must
     * resume once no strictly-higher-class job remains claimable. The
     * threaded dual: the worker's C++ stack below a nested
     * executeTask.
     */
    std::deque<Continuation> preempted;
    NextAction next = NextAction::Steal;
    FrameId checkParent = kNoFrame;
    /** The scheduling brain: RNG, escalation, push policy, affinity,
     * dry-poll cadence, park streaks — shared code with the threaded
     * runtime (sched/steal_core.h). */
    StealCore brain;

    /** @name Parking model (SimConfig::modelParking only) */
    /// @{
    bool parked = false;
    /** The pending wake is a targeted socket-edge wake, not a timeout. */
    bool boardWakePending = false;
    double parkStart = 0.0;
    /** Time of this core's currently scheduled event — a targeted wake
     * reschedules only if it lands earlier. */
    double nextWakeAt = 0.0;
    /** Matches Event::token; stale heap entries are skipped on pop. */
    uint64_t eventToken = 0;
    /// @}

    double workCycles = 0.0;
    double schedCycles = 0.0;
    double idleCycles = 0.0;
};

struct Event
{
    double time;
    uint64_t seq;
    int core;
    /** Lazy invalidation: a targeted wake supersedes the fallback event
     * already in the heap by bumping the core's token. */
    uint64_t token;

    bool
    operator>(const Event &o) const
    {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

/** The whole-run state: one simulated execution. */
class Simulation
{
  public:
    Simulation(const ComputationDag &dag, const Machine &machine, int cores,
               const SimConfig &config, LatencyModel latency,
               const std::vector<SimJob> *jobs = nullptr)
        : _dag(dag),
          _machine(machine),
          _cfg(config),
          _numCores(cores),
          _usToCycles(machine.ghz() * 1000.0),
          _dist(machine, cores,
                config.sched.biasedSteals ? config.sched.biasWeights
                                          : BiasWeights::uniform()),
          _board(cores, _dist.workerSockets()),
          _memory(machine, dag, latency),
          _frames(dag.numFrames()),
          _cores(static_cast<std::size_t>(cores)),
          _shed(config.sched.serving),
          _interference(config.sched.serving, machine.numSockets()),
          _trace(config.interference)
    {
        // Interference epochs tick on the virtual clock at the same
        // cadence the threaded sensor samples on the wall clock. A
        // null trace never ticks (and never charges), keeping every
        // pre-existing configuration's event sequence byte-identical.
        _epochCycles = _cfg.sched.serving.pressureEpochUs * _usToCycles;
        _nextEpochAt = _epochCycles;
        NUMAWS_ASSERT(cores >= 1);
        // Clamp exactly like the threaded Mailbox does, so a cross-engine
        // run with an out-of-range capacity compares like with like.
        if (_cfg.sched.mailboxCapacity < 1)
            _cfg.sched.mailboxCapacity = 1;
        if (_cfg.sched.mailboxCapacity > kMaxMailboxCapacity)
            _cfg.sched.mailboxCapacity = kMaxMailboxCapacity;
        // One StealCore per simulated core — the same brain the threaded
        // runtime drives, fed the sim's seeded RNG chain so runs stay
        // byte-reproducible per seed.
        const EngineView view{&_dist, &_board};
        uint64_t seed_state = _cfg.seed;
        for (int c = 0; c < cores; ++c) {
            _cores[c].brain = StealCore(_cfg.sched, view, c, socketOf(c),
                                        splitmix64(seed_state));
        }
        if (jobs != nullptr) {
            // Serving mode: nothing is pre-seeded — every root frame
            // flows through admission at its arrival instant, claimed
            // from per-class lanes by the scheduling loop (the sim's
            // JobQueue).
            _jobs = jobs;
            NUMAWS_ASSERT(!_jobs->empty());
            _jobStats.resize(_jobs->size());
            _jobOfRoot.assign(dag.numFrames(), -1);
            _frameJobCls.assign(dag.numFrames(), -1);
            for (std::size_t j = 0; j < _jobs->size(); ++j) {
                const SimJob &job = (*_jobs)[j];
                NUMAWS_ASSERT(job.root != kNoFrame);
                NUMAWS_ASSERT(dag.frame(job.root).parent == kNoFrame);
                NUMAWS_ASSERT(job.cls >= 0 && job.cls < kNumJobLanes);
                NUMAWS_ASSERT(j == 0
                              || (*_jobs)[j - 1].arrivalCycles
                                     <= job.arrivalCycles);
                _jobOfRoot[job.root] = static_cast<int32_t>(j);
                _frameJobCls[job.root] = static_cast<int8_t>(job.cls);
            }
        } else {
            // The root computation starts on core 0 (first core of the
            // first socket, as the runtime pins it).
            _cores[0].cur = Continuation{dag.root(), dag.frame(dag.root())
                                                         .itemBegin};
        }
    }

    SimResult run();

    /** Serving mode only: the measured per-job timelines. */
    const std::vector<SimJobStats> &jobStats() const { return _jobStats; }

  private:
    int socketOf(int core) const { return _dist.socketOfWorker(core); }

    /** Active cores [first, last) on @p socket (even-spread packing). */
    std::pair<int, int>
    coresOfSocket(int socket) const
    {
        const int sockets = _machine.numSockets();
        const int per = (_numCores + sockets - 1) / sockets;
        const int first = socket * per;
        const int last = std::min(_numCores, first + per);
        return {first, last};
    }

    bool
    placeMismatch(int core, Place place) const
    {
        if (!_cfg.sched.useMailboxes || !isConcretePlace(place))
            return false;
        if (place >= _machine.numSockets())
            return false; // hint beyond this machine: ignore
        const auto [first, last] = coresOfSocket(place);
        if (first >= last)
            return false; // no active cores there: unsatisfiable hint
        return socketOf(core) != place;
    }

    /**
     * PUSHBACK (Figure 5): deposit @p cont into a random mailbox on its
     * designated socket, retrying up to the pushing threshold. Returns
     * true if handed off. @p cost accumulates attempt costs.
     */
    bool
    pushBack(int core, Continuation cont, double &cost)
    {
        FrameState &fs = _frames[cont.frame];
        const Place target = _dag.frame(cont.frame).place;
        const auto [first, last] = coresOfSocket(target);
        NUMAWS_ASSERT(first < last);
        // The core picks receivers (board-guided or blind per policy)
        // and runs the threshold state machine; this driver executes
        // the deposits and charges their costs. A receiver that is the
        // pusher itself or has no room burns the attempt, exactly like
        // the threaded engine's rejected tryPut.
        StealCore &brain = _cores[core].brain;
        brain.beginPushback(
            static_cast<int64_t>(_cores[core].deq.size()));
        bool pushed = false;
        while (fs.pushCount
               < static_cast<uint32_t>(brain.pushThreshold())) {
            ++_counters.pushAttempts;
            cost += _cfg.pushAttemptCost;
            const int receiver =
                brain.pickPushReceiver(first, last, /*self=*/core,
                                       target);
            if (receiver != core && mailboxHasRoom(receiver)) {
                mailboxDeposit(receiver, cont, core);
                ++_counters.pushSuccesses;
                brain.onPushResult(true);
                pushed = true;
                break;
            }
            brain.onPushResult(false);
            ++fs.pushCount;
        }
        if (!pushed)
            ++_counters.pushGiveUps;
        return pushed;
    }

    /** One scheduling step for @p core; returns (cost, charge). */
    std::pair<double, Charge> step(int core);

    std::pair<double, Charge> stepExecute(int core);
    std::pair<double, Charge> stepReturn(int core);
    std::pair<double, Charge> stepSchedulingLoop(int core);
    std::pair<double, Charge> stepStealAttempt(int core);

    /** @name Parking model (active when SimConfig::modelParking)
     * Mirrors Runtime::idleWait/ParkingLot: a core parks after a run of
     * fruitless probes (the StealCore's spin budget) and wakes on a
     * timer or on a targeted socket-occupancy edge plus a fallback
     * timeout per the policy, paying boardCheckCost per wakeup check.
     * Streak tracking, budgets, and timeouts come from the per-core
     * StealCore (possibly EWMA-tuned); this block owns only the event
     * mechanics. */
    /// @{
    bool parkingModeled() const { return _cfg.modelParking; }

    /** The (tuned) park timeout for @p core, in machine cycles. */
    double
    parkTimeoutCycles(int core) const
    {
        return _cores[core].brain.parkTimeoutUs() * _usToCycles;
    }

    /** (Re)schedule @p core's next event at @p t, superseding whatever
     * event the heap still holds for it. */
    void
    schedule(int core, double t)
    {
        CoreState &c = _cores[core];
        c.eventToken = ++_tokenGen;
        c.nextWakeAt = t;
        _heap.push(Event{t, _seq++, core, c.eventToken});
    }

    /** A fruitless probe (failed steal or dry poll): the core's park
     * streak may cross its spin budget and request a park. */
    void
    noteProbeFailure(int core)
    {
        if (!parkingModeled() || _numCores <= 1)
            return;
        _cores[core].brain.noteFruitless();
    }

    /** A socket occupancy word went 0 -> nonzero: under board parking,
     * wake the cores parked on that socket wakeLatencyCycles after the
     * publish (sooner than their scheduled fallback only). */
    void
    maybeWakeSocket(int socket, int actor)
    {
        if (!parkingModeled() || !_cfg.sched.boardParking())
            return;
        const double at =
            _cores[actor].clock + _cfg.wakeLatencyCycles;
        const auto [first, last] = coresOfSocket(socket);
        for (int w = first; w < last; ++w) {
            CoreState &c = _cores[w];
            if (c.parked && at < c.nextWakeAt) {
                c.boardWakePending = true;
                schedule(w, at);
            }
        }
    }

    /** A parked core's wake event fired: pay the board check, unpark if
     * anything is stealable, else count the wake spurious and re-arm. */
    void
    wakeParked(int core, double now)
    {
        CoreState &c = _cores[core];
        ++_counters.wakeups;
        if (c.boardWakePending)
            ++_counters.boardWakes;
        c.boardWakePending = false;
        // The sleep itself and the wake-time board check are idle time.
        c.idleCycles += (now - c.parkStart) + _cfg.boardCheckCost;
        _counters.parkedCycles +=
            static_cast<uint64_t>(now - c.parkStart);
        c.clock = now + _cfg.boardCheckCost;
        // The admission lanes are off-board, so the wake check consults
        // them too (Runtime::idleWait's jobPending() in the predicate).
        const bool found =
            _board.anyWorkFor(socketOf(core)) || jobsPending();
        c.brain.onParkOutcome(found);
        if (found) {
            c.parked = false;
            c.brain.noteProgress();
            schedule(core, c.clock);
        } else {
            ++_counters.spuriousWakeups;
            c.parkStart = c.clock;
            schedule(core, c.clock + parkTimeoutCycles(core));
        }
    }
    /// @}

    /** @name Deque/mailbox mutations, each publishing to the board
     * The sim is sequential, so the board is exact: every transition is
     * published at the mutation site, the same contract the threaded
     * runtime approximates. A publish that flips a socket's occupancy
     * 0 -> nonzero is the edge targeted wakes ride on. */
    /// @{
    void
    dequePushBack(int core, Continuation cont)
    {
        _cores[core].deq.push_back(cont);
        if (_board.publishDeque(core, true))
            maybeWakeSocket(socketOf(core), core);
    }

    Continuation
    dequePopBack(int core)
    {
        Continuation cont = _cores[core].deq.back();
        _cores[core].deq.pop_back();
        if (_cores[core].deq.empty())
            _board.publishDeque(core, false);
        return cont;
    }

    Continuation
    dequePopFront(int core)
    {
        Continuation cont = _cores[core].deq.front();
        _cores[core].deq.pop_front();
        if (_cores[core].deq.empty())
            _board.publishDeque(core, false);
        return cont;
    }

    bool
    mailboxHasRoom(int core) const
    {
        return static_cast<int>(_cores[core].mailbox.size())
               < _cfg.sched.mailboxCapacity;
    }

    void
    mailboxDeposit(int receiver, Continuation cont, int actor)
    {
        _cores[receiver].mailbox.push_back(cont);
        if (_board.publishMailbox(receiver, true))
            maybeWakeSocket(socketOf(receiver), actor);
    }

    Continuation
    mailboxTake(int core)
    {
        Continuation cont = _cores[core].mailbox.front();
        _cores[core].mailbox.pop_front();
        if (_cores[core].mailbox.empty())
            _board.publishMailbox(core, false);
        return cont;
    }
    /// @}

    /** @name Serving mode (open-loop job admission, sim/serving.h) */
    /// @{
    static constexpr int kNumJobLanes = 3;

    bool serving() const { return _jobs != nullptr; }

    /** Any admitted-but-unclaimed job? The sim's Runtime::jobPending():
     * lanes are not on the board, so park predicates and wake checks
     * must consult this explicitly. */
    bool
    jobsPending() const
    {
        for (const auto &lane : _jobLanes)
            if (!lane.empty())
                return true;
        return false;
    }

    /** Class of the job whose computation frame @p f belongs to:
     * walk the spawn tree up to a frame with a memoized class (roots
     * are seeded at construction), then write the answer back down
     * the path so repeated queries are amortized O(1). Frames are
     * reached only after their job was claimed, so the walk always
     * terminates at a seeded root. */
    int
    jobClsOfFrame(FrameId f)
    {
        FrameId g = f;
        while (_frameJobCls[g] < 0) {
            NUMAWS_ASSERT(_dag.frame(g).parent != kNoFrame);
            g = _dag.frame(g).parent;
        }
        const int8_t cls = _frameJobCls[g];
        for (g = f; _frameJobCls[g] < 0; g = _dag.frame(g).parent)
            _frameJobCls[g] = cls;
        return cls;
    }

    /** Pick the lane Runtime::takeJobAbove would pop: the nonempty
     * lane with the best *effective* class strictly below @p below —
     * nominal order when aging is off (byte-identical to the pre-aging
     * scan), head-wait-promoted order when it is on, nominal class as
     * the tie-break either way. Returns -1 when nothing qualifies;
     * @p promoted reports whether aging (not nominal rank) won the
     * pick. */
    int
    pickJobLane(double now, int below, bool &promoted)
    {
        promoted = false;
        if (_cfg.sched.serving.agingWaitUs <= 0) {
            const int scan = below < kNumJobLanes ? below : kNumJobLanes;
            for (int lane = 0; lane < scan; ++lane)
                if (!_jobLanes[lane].empty())
                    return lane;
            return -1;
        }
        int best = -1;
        int best_eff = below < kNumJobLanes ? below : kNumJobLanes;
        for (int lane = 0; lane < kNumJobLanes; ++lane) {
            if (_jobLanes[lane].empty())
                continue;
            const double head =
                (*_jobs)[_jobLanes[lane].front()].arrivalCycles;
            const int eff = _shed.effectiveClass(
                lane,
                static_cast<int64_t>((now - head) / _machine.ghz()));
            if (eff < best_eff) {
                best_eff = eff;
                best = lane;
            }
        }
        promoted = best >= 0 && best_eff < best;
        return best;
    }

    /** Service a raised yield directive at a Spawn boundary (the sim's
     * Worker::serviceYield): consume the directive — the exchange
     * arbitrates against re-raises — and, if a job of strictly higher
     * effective class than the running one is claimable, checkpoint
     * the current continuation on the preempted stash and return to
     * the scheduling loop to claim it. A directive whose job was
     * claimed elsewhere meanwhile expires without effect. */
    void
    maybeYield(int core)
    {
        CoreState &c = _cores[core];
        if (!c.brain.takeYieldRequest())
            return;
        const int my_cls = jobClsOfFrame(c.cur.frame);
        bool promoted = false;
        if (pickJobLane(c.clock, my_cls, promoted) < 0)
            return;
        ++_counters.yields;
        c.preempted.push_back(c.cur);
        c.cur = Continuation{};
        c.next = NextAction::Steal;
    }

    /** Claim one admitted job with effective class strictly below
     * @p below (the sim's Runtime::takeJobAbove), or nullopt when no
     * lane qualifies. On a claim the step's cost/charge is returned:
     * cancelled or past-deadline entries resolve here without running,
     * one per scheduling step, exactly as before. */
    std::optional<std::pair<double, Charge>>
    tryClaimJob(int core, int below)
    {
        CoreState &c = _cores[core];
        bool promoted = false;
        const int lane_pick = pickJobLane(c.clock, below, promoted);
        if (lane_pick < 0)
            return std::nullopt;
        auto &lane = _jobLanes[lane_pick];
        const int j = lane.front();
        lane.pop_front();
        const SimJob &job = (*_jobs)[j];
        // Claim-time gate, same order as Runtime::takeJob: every pop
        // feeds the class's claim-delay EWMA (skipped entries are
        // evidence of the same queue), then cancelled or past-deadline
        // entries resolve here without running.
        _shed.observeDelay(job.cls,
                           static_cast<int64_t>(
                               (c.clock - job.arrivalCycles)
                               / _machine.ghz()));
        const double at = c.clock + _cfg.mailboxCheckCost;
        if (job.cancelAtCycles != 0.0 && job.cancelAtCycles <= c.clock) {
            resolveJobUnrun(j, JobOutcome::Cancelled, /*shed=*/false,
                            at);
            return {{_cfg.mailboxCheckCost, Charge::Sched}};
        }
        if (job.deadlineCycles != 0.0 && c.clock > job.deadlineCycles) {
            resolveJobUnrun(j, JobOutcome::Expired, /*shed=*/false, at);
            return {{_cfg.mailboxCheckCost, Charge::Sched}};
        }
        if (promoted)
            ++_counters.agedClaims;
        _jobStats[j].startCycles = at;
        const FrameId root = job.root;
        c.cur = Continuation{root, _dag.frame(root).itemBegin};
        return {{_cfg.mailboxCheckCost, Charge::Sched}};
    }

    /** Resolve job @p j without running it — admission reject, shed
     * victim, or claim-time skip — at virtual instant @p at. The sim's
     * Runtime::resolveUnrun: every job resolves exactly once, so the
     * finished tally (and the run-termination check) advances here
     * exactly as it does at a root return. */
    void
    resolveJobUnrun(int j, JobOutcome outcome, bool shed, double at)
    {
        SimJobStats &st = _jobStats[j];
        st.outcome = outcome;
        st.shed = shed;
        st.finishCycles = at;
        ++_jobsFinished;
        if (_jobsFinished == _jobs->size()) {
            _done = true;
            _doneTime = std::max(_doneTime, at);
        }
    }

    /** Admit job @p j at its arrival instant: lane it by class and,
     * under board parking, issue the targeted socket wake
     * Runtime::notifyAdmission issues — the hinted socket when the
     * root carries a concrete place, else round-robin. Since PR 7 the
     * admission edge is also where the overload layer acts, in the
     * same order as Runtime::submit/enqueueJob: capacity check first
     * (reject at the arrival instant, never laned), then one
     * QueueDelay shed from the lowest nonempty lane while the
     * claim-delay EWMA sits above target and a standing queue
     * exists. */
    void
    admitJob(int j)
    {
        const SimJob &job = (*_jobs)[j];
        _jobStats[j].arrivalCycles = job.arrivalCycles;
        if (!_shed.admit(job.cls, static_cast<int64_t>(
                                      _jobLanes[job.cls].size()))) {
            resolveJobUnrun(j, JobOutcome::Rejected, /*shed=*/false,
                            job.arrivalCycles);
            return;
        }
        // Only a standing queue is shed (CoDel's rule, matching
        // Runtime::enqueueJob): an arrival into empty lanes is the
        // server's next unit of work, never a victim.
        bool standing = false;
        for (int lane = 0; lane < kNumJobLanes; ++lane)
            standing |= !_jobLanes[lane].empty();
        _jobLanes[job.cls].push_back(j);
        if (standing && _shed.overloaded()) {
            for (int lane = kNumJobLanes - 1; lane >= 0; --lane) {
                if (_jobLanes[lane].empty())
                    continue;
                const int victim = _jobLanes[lane].front();
                _jobLanes[lane].pop_front();
                resolveJobUnrun(victim, JobOutcome::Rejected,
                                /*shed=*/true, job.arrivalCycles);
                break;
            }
        }
        // First-crossing instrumentation for the unpark-lead gate: when
        // did the early-warning pressure signal first fire, and when did
        // a delay EWMA first actually cross its shed target?
        if (_firstShedCross == 0.0 && _shed.overloaded())
            _firstShedCross = job.arrivalCycles;
        if (_firstUnparkPressure == 0.0 && _shed.unparkPressure())
            _firstUnparkPressure = job.arrivalCycles;
        // Latency-class preemption (Runtime::enqueueJob's maybePreempt):
        // when no core is idle and some core runs a strictly lower
        // class, raise the yield directive on the worst such core; its
        // next Spawn boundary checkpoints and claims this job.
        if (_cfg.sched.serving.preempt) {
            std::vector<int8_t> running(
                static_cast<std::size_t>(_numCores));
            for (int w = 0; w < _numCores; ++w) {
                const CoreState &c = _cores[w];
                running[static_cast<std::size_t>(w)] =
                    c.cur.valid()
                        ? static_cast<int8_t>(
                              jobClsOfFrame(c.cur.frame))
                        : static_cast<int8_t>(-1);
            }
            const int victim = StealCore::pickPreemptVictim(
                job.cls, running.data(), _numCores);
            if (victim >= 0)
                _cores[victim].brain.requestYield();
        }
        if (!parkingModeled() || !_cfg.sched.boardParking())
            return; // timer parking relies on its fallback, as the runtime
        const double at = job.arrivalCycles + _cfg.wakeLatencyCycles;
        // Shed-aware elastic unpark: standing pressure means the pool is
        // underprovisioned *now*, so escalate the targeted admission
        // wake to every parked core (Runtime::enqueueJob's notifyWork
        // escalation), paying wake latency before the shed threshold
        // crosses instead of after.
        if (_shed.unparkPressure()) {
            for (int w = 0; w < _numCores; ++w) {
                CoreState &c = _cores[w];
                if (c.parked && at < c.nextWakeAt) {
                    c.boardWakePending = true;
                    schedule(w, at);
                }
            }
            return;
        }
        const int sockets = _machine.numSockets();
        const Place p = _dag.frame(job.root).place;
        int socket;
        if (isConcretePlace(p) && p < sockets) {
            socket = p;
        } else {
            socket = static_cast<int>(_admitCursor++
                                      % static_cast<uint32_t>(sockets));
        }
        // Steer the admission wake off a pressured socket (identity
        // when adaptation is off or the socket is calm), mirroring
        // Runtime::notifyAdmission.
        socket = _interference.steerSocket(socket);
        const auto [first, last] = coresOfSocket(socket);
        for (int w = first; w < last; ++w) {
            CoreState &c = _cores[w];
            if (c.parked && at < c.nextWakeAt) {
                c.boardWakePending = true;
                schedule(w, at);
            }
        }
    }
    /// @}

    const ComputationDag &_dag;
    const Machine &_machine;
    SimConfig _cfg;
    int _numCores;
    /** Cycles per microsecond: converts the policy's µs park knobs to
     * this machine's clock (200us @ 2.2 GHz == the old 440k cycles). */
    double _usToCycles;
    StealDistribution _dist;
    OccupancyBoard _board;
    SimMemory _memory;
    std::vector<FrameState> _frames;
    std::vector<CoreState> _cores;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        _heap;
    uint64_t _seq = 0;
    uint64_t _tokenGen = 0;
    SimCounters _counters;
    MemCounters _mem_counters;
    bool _done = false;
    double _doneTime = 0.0;

    /** @name Serving-mode state */
    /// @{
    const std::vector<SimJob> *_jobs = nullptr;
    std::vector<SimJobStats> _jobStats;
    /** Root frame id -> job index (-1 for non-root frames). */
    std::vector<int32_t> _jobOfRoot;
    /** Frame id -> owning job's class, memoized lazily by
     * jobClsOfFrame (-1 = not yet resolved; roots seeded eagerly). */
    std::vector<int8_t> _frameJobCls;
    /** First admission instants (cycles, 0 = never) at which
     * unparkPressure() fired and at which the shed threshold itself
     * crossed — the unpark-lead gate's two timestamps. */
    double _firstUnparkPressure = 0.0;
    double _firstShedCross = 0.0;
    std::size_t _nextArrival = 0;
    /** Admitted, unclaimed job indices per class (JobQueue's lanes). */
    std::deque<int> _jobLanes[kNumJobLanes];
    std::size_t _jobsFinished = 0;
    uint32_t _admitCursor = 0;
    /** Overload-protection brain, the same ShedCore the threaded
     * Runtime drives (sched/shed_core.h); single-threaded here, so
     * its EWMAs are exact and runs stay byte-deterministic. */
    ShedCore _shed;
    /// @}

    /** @name Interference model (SimConfig::interference, PR 10) */
    /// @{
    /** Retirement rank, matching the threaded Worker's: 0 = the
     * socket's last core, retired (and trace-stolen) first. */
    int
    rankFromTop(int core) const
    {
        const auto [first, last] = coresOfSocket(socketOf(core));
        (void)first;
        return (last - 1) - core;
    }

    /** Tick every socket's hysteresis ladder for each epoch boundary
     * at or before @p upTo, feeding the trace's synthesized pressure
     * — the sim's analogue of the per-socket leader's sample. */
    void
    tickInterferenceEpochs(double upTo)
    {
        while (_nextEpochAt <= upTo) {
            if (_interference.enabled()) {
                for (int s = 0; s < _machine.numSockets(); ++s) {
                    const auto [first, last] = coresOfSocket(s);
                    if (first >= last)
                        continue;
                    _interference.epochTick(
                        s,
                        _trace->pressureAt(
                            s, _nextEpochAt, last - first,
                            _interference.retiredTarget(s)),
                        last - first);
                }
            }
            _nextEpochAt += _epochCycles;
        }
    }

    /** The same shared adaptation brain the threaded Runtime drives;
     * single-ticker here, so verdicts are exact per epoch. */
    InterferenceCore _interference;
    const InterferenceTrace *_trace = nullptr;
    double _epochCycles = 0.0;
    double _nextEpochAt = 0.0;
    /// @}
};

std::pair<double, Charge>
Simulation::stepReturn(int core)
{
    CoreState &c = _cores[core];
    const Frame &f = _dag.frame(c.cur.frame);

    // Root return is checked *before* the deque: with preemption a
    // claimed job's root can finish while the preempted chain's
    // ancestors still sit below it on this deque (they are not this
    // root's parents — the scheduling loop resumes that chain from the
    // preempted stash). Without preemption a returning root always has
    // an empty deque, so the reorder is behavior-neutral.
    if (f.parent == kNoFrame) {
        const FrameId finished = c.cur.frame;
        c.cur = Continuation{};
        if (serving()) {
            // A job's root returned: stamp its finish and keep serving
            // until the last job is done (arrivals still pending keep
            // the run alive even with every lane drained).
            const int32_t j = _jobOfRoot[finished];
            NUMAWS_ASSERT(j >= 0);
            const SimJob &job = (*_jobs)[j];
            const double fin = c.clock + _cfg.returnCost;
            SimJobStats &st = _jobStats[j];
            st.finishCycles = fin;
            // Outcome classification at the return edge, mirroring the
            // threaded wrapper: a cancel that landed mid-run resolves
            // Cancelled (the sim's fork-join bodies are boundary-dense,
            // so a cooperative unwind always reaches the root); else a
            // finish past the deadline resolves Expired (finishJob's
            // deterministic late-finish flip); else Done.
            if (job.cancelAtCycles != 0.0 && job.cancelAtCycles <= fin)
                st.outcome = JobOutcome::Cancelled;
            else if (job.deadlineCycles != 0.0
                     && fin > job.deadlineCycles)
                st.outcome = JobOutcome::Expired;
            else
                st.outcome = JobOutcome::Done;
            ++_jobsFinished;
            if (_jobsFinished == _jobs->size()) {
                _done = true;
                _doneTime = std::max(_doneTime, fin);
            }
            c.next = NextAction::Steal;
            return {_cfg.returnCost, Charge::Work};
        }
        _done = true;
        _doneTime = c.clock + _cfg.returnCost;
        return {_cfg.returnCost, Charge::Work};
    }

    if (!c.deq.empty()) {
        // Parent's continuation is still ours: pop and keep going
        // (Figure 2 lines 3-5). With continuation stealing the tail is
        // necessarily the immediate parent — preempted-chain entries
        // can only sit *below* every entry of the current job's chain,
        // and thieves drain the deque front-first, so if any entry
        // remains the back is ours.
        const Continuation parent = dequePopBack(core);
        NUMAWS_ASSERT(parent.frame == f.parent);
        c.cur = parent;
        return {_cfg.returnCost, Charge::Work};
    }

    // Deque empty: our parent's continuation was stolen (Figure 2
    // lines 6-8).
    c.cur = Continuation{};
    FrameState &ps = _frames[f.parent];
    NUMAWS_ASSERT(ps.stolen || ps.suspended);
    NUMAWS_ASSERT(ps.joinCount > 0);
    --ps.joinCount;
    if (ps.suspended && ps.joinCount == 0) {
        // We are the last returning child: CHECK_PARENT next.
        c.next = NextAction::CheckParent;
        c.checkParent = f.parent;
    } else {
        c.next = NextAction::Steal;
    }
    return {_cfg.returnCost, Charge::Work};
}

std::pair<double, Charge>
Simulation::stepExecute(int core)
{
    CoreState &c = _cores[core];
    const Frame &f = _dag.frame(c.cur.frame);
    if (c.cur.item == f.itemEnd)
        return stepReturn(core);

    const Item &item = _dag.item(c.cur.item);
    switch (item.kind) {
      case ItemKind::Strand: {
        ++_counters.strandsExecuted;
        const double mem = _memory.cost(socketOf(core), item.accessBegin,
                                        item.accessEnd, _mem_counters);
        if (_cfg.sched.affinityTracking()
            && item.accessBegin != item.accessEnd) {
            // Remember where this strand's data lives: the thief-side
            // affinity signal for OccupancyAffinity victim weighting.
            uint32_t mask = 0;
            const int sockets = _machine.numSockets();
            for (uint32_t a = item.accessBegin; a != item.accessEnd;
                 ++a) {
                const MemAccess &acc = _dag.access(a);
                const int home =
                    _dag.homeOf(acc.region, acc.offset, sockets);
                if (home < 32) // affinity masks cover 32 sockets
                    mask |= 1u << home;
            }
            c.brain.setAffinity(mask);
        }
        ++c.cur.item;
        return {item.cycles + mem, Charge::Work};
      }
      case ItemKind::Spawn: {
        ++_counters.spawns;
        // Push the continuation; descend into the child (Figure 2 lines
        // 1-2). This is continuation stealing: the child runs here, the
        // parent's remainder becomes stealable.
        dequePushBack(core, Continuation{c.cur.frame, c.cur.item + 1});
        c.cur = Continuation{item.child,
                             _dag.frame(item.child).itemBegin};
        // Preemption boundary (TaskGroup::spawn's yieldPending check):
        // a raised directive checkpoints the fresh child onto the
        // private preempted stash — the continuation just pushed above
        // stays stealable — and sends this core to the scheduling loop
        // to claim the higher-class job. One relaxed flag read when the
        // knob is on; nothing at all when it is off.
        if (serving() && _cfg.sched.serving.preempt
            && c.brain.yieldRequested())
            maybeYield(core);
        return {_cfg.spawnCost, Charge::Work};
      }
      case ItemKind::Sync: {
        FrameState &fs = _frames[c.cur.frame];
        if (!fs.stolen) {
            // Shadow-frame sync is a no-op (Figure 2 line 18).
            ++_counters.trivialSyncs;
            ++c.cur.item;
            return {_cfg.syncTrivialCost, Charge::Work};
        }
        ++_counters.nontrivialSyncs;
        double cost = _cfg.syncNontrivialCost;
        if (fs.joinCount == 0) {
            // CHECKSYNC succeeded; the frame is whole again.
            fs.stolen = false;
            const uint32_t next_item = c.cur.item + 1;
            // Figure 5 lines 5-11: place check + lazy pushback.
            if (placeMismatch(core, f.place)) {
                Continuation cont{c.cur.frame, next_item};
                if (pushBack(core, cont, cost)) {
                    c.cur = Continuation{};
                    c.next = NextAction::Steal;
                    return {cost, Charge::Sched};
                }
            }
            c.cur.item = next_item;
            return {cost, Charge::Sched};
        }
        // Outstanding children: suspend and go steal (lines 12-15).
        ++_counters.suspensions;
        fs.suspended = true;
        fs.resumeItem = c.cur.item + 1;
        c.cur = Continuation{};
        c.next = NextAction::Steal;
        return {cost, Charge::Sched};
      }
    }
    NUMAWS_PANIC("unreachable item kind");
}

std::pair<double, Charge>
Simulation::stepStealAttempt(int core)
{
    CoreState &c = _cores[core];
    if (_numCores <= 1)
        return {_cfg.stealAttemptBase, Charge::Idle};

    // Every decision — dry-poll cadence, victim, the coin flip and its
    // informed override, batching eligibility — comes from the shared
    // StealCore; this driver executes the action under the cost model.
    const StealAction action = c.brain.nextAction();
    if (action.kind == StealAction::Kind::DryPoll) {
        // The probe the board exists to save: polling the board replaced
        // the victim probe outright (the core still forces an insurance
        // probe every 4th consecutive dry poll, so a false-empty board
        // delays work pickup by a bounded factor instead of starving
        // anyone).
        noteProbeFailure(core);
        return {_cfg.boardCheckCost, Charge::Idle};
    }
    const int victim = action.victim;
    const int hops = _machine.hops(socketOf(core), socketOf(victim));
    double cost = _cfg.stealAttemptBase + _cfg.stealPerHop * hops;
    // An informed probe consulted the board (snapshot + bit reads) to
    // pick its level and victim: price that consult on every informed
    // attempt, not only on the dry-poll early return, so the policy
    // ablation compares like with like.
    if (action.informedConsult)
        cost += _cfg.boardCheckCost;

    Continuation got;

    if (action.checkMailboxFirst) {
        cost += _cfg.mailboxCheckCost;
        if (!_cores[victim].mailbox.empty()) {
            const Continuation cont = mailboxTake(victim);
            const Place p = _dag.frame(cont.frame).place;
            if (!placeMismatch(core, p)) {
                // Outcome 2: earmarked for us (or unconstrained): take it.
                got = cont;
            } else {
                // Outcome 3: earmarked elsewhere: push it onward; if the
                // threshold is exhausted we take it ourselves.
                if (pushBack(core, cont, cost)) {
                    // Work was found (and forwarded): not a failed probe.
                    c.brain.onStealResult(action, true);
                    return {cost, Charge::Sched};
                }
                got = cont;
            }
        }
        // Outcome 1: mailbox empty -> fall through to the deque.
    }

    if (!got.valid()) {
        CoreState &v = _cores[victim];
        if (!v.deq.empty()) {
            got = dequePopFront(victim);
            // Promotion: the frame is now (again) a stolen full frame,
            // and the victim keeps executing one outstanding child.
            ++_counters.steals;
            FrameState &fs = _frames[got.frame];
            fs.stolen = true;
            ++fs.joinCount;
            cost += _cfg.promotionCost;
            // Remote-level batching: one cross-socket round trip moves
            // up to half the victim's deque; extras are promoted now and
            // parked in the private overflow buffer at a reduced
            // per-frame cost (the amortization this knob buys).
            if (action.remoteBatch) {
                // Total batch = ceil(half) of the original deque size,
                // mirroring WsDeque::stealHalf: one frame was already
                // popped above, so take size/2 of what remains.
                int extras = static_cast<int>(v.deq.size() / 2);
                if (extras > action.batchMax - 1)
                    extras = action.batchMax - 1;
                for (int i = 0; i < extras; ++i) {
                    Continuation extra = dequePopFront(victim);
                    FrameState &es = _frames[extra.frame];
                    es.stolen = true;
                    ++es.joinCount;
                    ++_counters.steals;
                    ++_counters.batchedFrames;
                    cost += _cfg.batchExtraCost;
                    c.overflow.push_back(extra);
                }
                if (extras > 0)
                    ++_counters.batchedSteals;
            }
            // Figure 5: a freshly stolen frame earmarked for a different
            // socket is pushed toward its place.
            if (placeMismatch(core, _dag.frame(got.frame).place)) {
                if (pushBack(core, got, cost)) {
                    c.brain.onStealResult(action, true);
                    return {cost, Charge::Sched};
                }
            }
        }
    } else {
        ++_counters.mailboxSteals;
    }

    c.brain.onStealResult(action, got.valid());
    if (got.valid()) {
        c.cur = got;
        return {cost, Charge::Sched};
    }
    noteProbeFailure(core);
    return {cost, Charge::Idle};
}

std::pair<double, Charge>
Simulation::stepSchedulingLoop(int core)
{
    CoreState &c = _cores[core];

    if (c.next == NextAction::CheckParent) {
        // Figure 2 lines 20-22 / Figure 5 lines 18-24.
        c.next = NextAction::Steal;
        const FrameId parent = c.checkParent;
        c.checkParent = kNoFrame;
        FrameState &fs = _frames[parent];
        NUMAWS_ASSERT(fs.suspended && fs.joinCount == 0);
        fs.suspended = false;
        fs.stolen = false; // the sync this frame was parked on is complete
        ++_counters.resumes;
        double cost = _cfg.resumeCost;
        if (placeMismatch(core, _dag.frame(parent).place)) {
            Continuation cont{parent, fs.resumeItem};
            if (pushBack(core, cont, cost))
                return {cost, Charge::Sched};
        }
        c.cur = Continuation{parent, fs.resumeItem};
        return {cost, Charge::Sched};
    }

    // A preempted chain is parked on this core: the only legal moves
    // are claiming another strictly-higher-effective-class job (nested
    // preemption — its chain stacks on the deque exactly like the
    // first) or resuming the checkpoint. Mailbox/overflow/steal work
    // would start an unrelated chain above the preempted one's deque
    // entries and break the ancestor-chain invariant stepReturn pops
    // by; it stays available to every *other* core throughout.
    if (serving() && !c.preempted.empty()) {
        if (auto claimed = tryClaimJob(
                core, jobClsOfFrame(c.preempted.back().frame)))
            return *claimed;
        c.cur = c.preempted.back();
        c.preempted.pop_back();
        return {_cfg.mailboxCheckCost, Charge::Sched};
    }

    // POPMAILBOX (Figure 5 line 26): something parked for this place?
    if (!c.mailbox.empty()) {
        c.cur = mailboxTake(core);
        ++_counters.mailboxPops;
        return {_cfg.mailboxCheckCost, Charge::Sched};
    }

    // Drain the batched-steal overflow before probing new victims. The
    // scheduling loop runs with an empty deque, so resuming one of these
    // behaves exactly like a freshly stolen continuation — including the
    // Figure 5 place check.
    if (!c.overflow.empty()) {
        Continuation cont = c.overflow.front();
        c.overflow.pop_front();
        double cost = _cfg.mailboxCheckCost;
        if (placeMismatch(core, _dag.frame(cont.frame).place)) {
            if (pushBack(core, cont, cost))
                return {cost, Charge::Sched};
        }
        c.cur = cont;
        return {cost, Charge::Sched};
    }

    // Admission before stealing (the threaded mainLoop's order): claim
    // the oldest job from the best-effective-class nonempty lane.
    // Charged like a mailbox inspection — the JobQueue pop is one
    // locked deque operation of the same shape.
    if (serving()) {
        if (auto claimed = tryClaimJob(core, kNumJobLanes))
            return *claimed;
    }

    return stepStealAttempt(core);
}

std::pair<double, Charge>
Simulation::step(int core)
{
    if (_cores[core].cur.valid())
        return stepExecute(core);
    return stepSchedulingLoop(core);
}

SimResult
Simulation::run()
{
    for (int c = 0; c < _numCores; ++c)
        schedule(c, 0.0);

    while (!_done) {
        NUMAWS_ASSERT(!_heap.empty());
        // Serving: drain every arrival that lands at or before the next
        // core event (parked cores always hold a fallback event, so the
        // heap top bounds how far virtual time can jump). An admission
        // wake may push an earlier event; the re-check picks it up.
        while (serving() && _nextArrival < _jobs->size()
               && (*_jobs)[_nextArrival].arrivalCycles
                      <= _heap.top().time) {
            admitJob(static_cast<int>(_nextArrival));
            ++_nextArrival;
        }
        if (_done)
            break; // the last job resolved at an admission edge
        if (_trace != nullptr)
            tickInterferenceEpochs(_heap.top().time);
        const Event ev = _heap.top();
        _heap.pop();
        CoreState &c = _cores[ev.core];
        if (ev.token != c.eventToken)
            continue; // superseded by an earlier targeted wake
        if (c.parked) {
            wakeParked(ev.core, ev.time);
            continue;
        }
        // Adaptation verdict (the sim's Worker::retirePark): a core
        // retired by the ladder sleeps one epoch charged idle instead
        // of claiming or stealing — but only once its own chain and
        // private buffers are drained, the threaded drain-first rule,
        // *including* a pending CHECK_PARENT duty: only this core can
        // resume the parent it just unblocked, so deferring it across
        // the sleep would strand the suspended frame forever. Mailbox
        // entries stay stealable by every other core.
        if (_trace != nullptr && !c.cur.valid() && c.deq.empty()
            && c.overflow.empty() && c.preempted.empty()
            && c.next == NextAction::Steal
            && _interference.workerRetired(socketOf(ev.core),
                                           rankFromTop(ev.core))) {
            c.clock = ev.time;
            c.idleCycles += _epochCycles;
            _counters.parkedCycles +=
                static_cast<uint64_t>(_epochCycles);
            schedule(ev.core, c.clock + _epochCycles);
            continue;
        }
        c.clock = ev.time;
        const auto [cost, charge] = step(ev.core);
        NUMAWS_ASSERT(cost >= 0.0);
        double charged = cost;
        // Charge the trace: a stolen core's step is time-sliced
        // against its co-runner, a slowed socket's step pays the
        // contention factor. Purely multiplicative on the step the
        // engine already chose, so the schedule shifts only through
        // the timeline — no extra randomness.
        if (_trace != nullptr && cost > 0.0) {
            const int sock = socketOf(ev.core);
            const int rank = rankFromTop(ev.core);
            const double f = _trace->costFactor(sock, rank, ev.time);
            if (f > 1.0) {
                const double extra = cost * (f - 1.0);
                charged = cost * f;
                if (rank < _trace->stolenOn(sock, ev.time))
                    _counters.stolenCycles +=
                        static_cast<uint64_t>(extra);
                else
                    _counters.slowedCycles +=
                        static_cast<uint64_t>(extra);
            }
        }
        switch (charge) {
          case Charge::Work:
            c.workCycles += charged;
            break;
          case Charge::Sched:
            c.schedCycles += charged;
            break;
          case Charge::Idle:
            c.idleCycles += charged;
            break;
        }
        c.clock += charged;
        // Any step that worked or scheduled breaks the fruitless-probe
        // streak the parking budget counts.
        if (charge != Charge::Idle)
            c.brain.noteProgress();
        if (c.brain.takeParkRequest()) {
            // Mirror Runtime::idleWait's registered-then-check: the
            // board-policy park predicate sees published work and
            // returns without sleeping (the timer path has no such
            // predicate — it sleeps regardless, as the runtime does).
            if (_cfg.sched.boardParking()
                && (_board.anyWorkFor(socketOf(ev.core))
                    || jobsPending())) {
                schedule(ev.core, c.clock);
            } else {
                c.parked = true;
                c.boardWakePending = false;
                c.parkStart = c.clock;
                ++_counters.parks;
                schedule(ev.core, c.clock + parkTimeoutCycles(ev.core));
            }
        } else {
            schedule(ev.core, c.clock);
        }
    }

    SimResult r;
    r.cores = _numCores;
    r.ghz = _machine.ghz();
    r.elapsedCycles = _doneTime;
    r.elapsedSeconds = _machine.cyclesToSeconds(_doneTime);
    for (int c = 0; c < _numCores; ++c) {
        const CoreState &cs = _cores[c];
        // Idle-fill the gap between a core's last event and the end of
        // the computation.
        const double fill = std::max(0.0, _doneTime - cs.clock);
        // A core still parked at the end spends that whole gap asleep:
        // count it toward the yield metric (its wake event never fires).
        if (cs.parked)
            _counters.parkedCycles += static_cast<uint64_t>(fill);
        r.workSeconds += _machine.cyclesToSeconds(cs.workCycles);
        r.schedSeconds += _machine.cyclesToSeconds(cs.schedCycles);
        r.idleSeconds += _machine.cyclesToSeconds(cs.idleCycles + fill);
        // Decision counters live on the shared core; translate them
        // into the sim's vocabulary.
        const StealCoreCounters &cc = cs.brain.counters();
        _counters.stealAttempts += cc.stealAttempts;
        _counters.boardDryPolls += cc.dryPolls;
        _counters.levelSkips += cc.levelSkips;
    }
    _counters.interferenceRetires = _interference.shrinks();
    _counters.interferenceReexpands = _interference.expands();
    r.counters = _counters;
    r.memory = _mem_counters;
    r.firstUnparkPressureCycles =
        static_cast<uint64_t>(_firstUnparkPressure);
    r.firstShedCrossCycles = static_cast<uint64_t>(_firstShedCross);
    return r;
}

} // namespace

SimResult
simulate(const ComputationDag &dag, const Machine &machine, int cores,
         const SimConfig &config, LatencyModel latency)
{
    Simulation sim(dag, machine, cores, config, latency);
    return sim.run();
}

SimResult
simulatePacked(const ComputationDag &dag, int cores,
               const SimConfig &config, LatencyModel latency)
{
    const Machine machine = Machine::paperMachineSubset(cores);
    return simulate(dag, machine, cores, config, latency);
}

ServingResult
simulateServing(const ComputationDag &dag, const std::vector<SimJob> &jobs,
                const Machine &machine, int cores, const SimConfig &config,
                LatencyModel latency)
{
    Simulation sim(dag, machine, cores, config, latency, &jobs);
    ServingResult r;
    r.sim = sim.run();
    r.jobs = sim.jobStats();

    // ns per cycle = 1 / ghz; the histogram mirrors the threaded
    // engine's (bucketed ns), the gate percentiles are exact. Latency
    // percentiles cover *served* (Done) jobs only — resolved-without-
    // serving jobs show up in the outcome tallies, and queue-delay
    // percentiles cover every job a core actually claimed.
    const double ns_per_cycle = 1.0 / machine.ghz();
    std::vector<double> served_us;
    std::vector<double> queue_us;
    served_us.reserve(r.jobs.size());
    queue_us.reserve(r.jobs.size());
    for (const SimJobStats &j : r.jobs) {
        switch (j.outcome) {
          case JobOutcome::Done:
            ++r.done;
            break;
          case JobOutcome::Expired:
            ++r.expired;
            break;
          case JobOutcome::Cancelled:
            ++r.cancelled;
            break;
          case JobOutcome::Rejected:
            ++r.rejected;
            if (j.shed)
                ++r.shed;
            break;
          default:
            NUMAWS_PANIC("sim job left unresolved (outcome %s)",
                         jobOutcomeName(j.outcome));
        }
        if (j.startCycles > 0.0)
            queue_us.push_back(j.queueCycles() * ns_per_cycle / 1000.0);
        if (j.outcome != JobOutcome::Done)
            continue;
        const double ns = j.latencyCycles() * ns_per_cycle;
        r.latency.record(ns > 0.0 ? static_cast<uint64_t>(ns) : 0);
        served_us.push_back(ns / 1000.0);
    }
    std::sort(served_us.begin(), served_us.end());
    std::sort(queue_us.begin(), queue_us.end());
    const auto exact = [](const std::vector<double> &sorted, double q) {
        if (sorted.empty())
            return 0.0;
        const auto n = static_cast<double>(sorted.size());
        auto idx = static_cast<std::size_t>(std::ceil(q * n));
        idx = idx > 0 ? idx - 1 : 0;
        if (idx >= sorted.size())
            idx = sorted.size() - 1;
        return sorted[idx];
    };
    r.p50Us = exact(served_us, 0.50);
    r.p99Us = exact(served_us, 0.99);
    r.p999Us = exact(served_us, 0.999);
    r.queueP50Us = exact(queue_us, 0.50);
    r.queueP99Us = exact(queue_us, 0.99);
    r.goodputPerSec = r.sim.elapsedSeconds > 0.0
                          ? static_cast<double>(r.done)
                                / r.sim.elapsedSeconds
                          : 0.0;
    return r;
}

ServingResult
simulateServingPacked(const ComputationDag &dag,
                      const std::vector<SimJob> &jobs, int cores,
                      const SimConfig &config, LatencyModel latency)
{
    const Machine machine = Machine::paperMachineSubset(cores);
    return simulateServing(dag, jobs, machine, cores, config, latency);
}

} // namespace numaws::sim
