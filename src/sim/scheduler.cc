#include "sim/scheduler.h"

#include <algorithm>
#include <queue>

#include "support/panic.h"

namespace numaws::sim {

namespace {

/** Execution state of one frame (the full-frame bookkeeping). */
struct FrameState
{
    bool stolen = false;    ///< stolen since its last successful sync
    bool suspended = false; ///< parked at a nontrivial sync
    int32_t joinCount = 0;  ///< outstanding stolen-away children
    uint32_t resumeItem = 0;
    uint32_t pushCount = 0; ///< PUSHBACK attempts (lifetime, per paper)
};

/** A stealable execution state: frame + next item. */
struct Continuation
{
    FrameId frame = kNoFrame;
    uint32_t item = 0;

    bool valid() const { return frame != kNoFrame; }
};

enum class NextAction : uint8_t { Steal, CheckParent };

/** Time bucket a step's cost is charged to. */
enum class Charge : uint8_t { Work, Sched, Idle };

struct CoreState
{
    double clock = 0.0;
    Continuation cur;
    std::deque<Continuation> deq; ///< back == tail (owner), front == head
    std::optional<Continuation> mailbox;
    /**
     * Extras from a batched remote steal, already promoted, drained in
     * the scheduling loop before the next steal attempt. Private to this
     * core: the sim's deque entries must stay an ancestor chain of the
     * current task (stepReturn asserts it), so foreign continuations may
     * not enter `deq`.
     */
    std::deque<Continuation> overflow;
    NextAction next = NextAction::Steal;
    FrameId checkParent = kNoFrame;
    Rng rng{0};
    StealEscalation esc;
    PushPolicy push;

    double workCycles = 0.0;
    double schedCycles = 0.0;
    double idleCycles = 0.0;
};

struct Event
{
    double time;
    uint64_t seq;
    int core;

    bool
    operator>(const Event &o) const
    {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

/** The whole-run state: one simulated execution. */
class Simulation
{
  public:
    Simulation(const ComputationDag &dag, const Machine &machine, int cores,
               const SimConfig &config, LatencyModel latency)
        : _dag(dag),
          _machine(machine),
          _cfg(config),
          _numCores(cores),
          _dist(machine, cores,
                config.biasedSteals ? config.biasWeights
                                    : BiasWeights::uniform()),
          _memory(machine, dag, latency),
          _frames(dag.numFrames()),
          _cores(static_cast<std::size_t>(cores))
    {
        NUMAWS_ASSERT(cores >= 1);
        uint64_t seed_state = config.seed;
        for (int c = 0; c < cores; ++c) {
            _cores[c].rng = Rng(splitmix64(seed_state));
            _cores[c].esc =
                StealEscalation(config.stealEscalationFailures);
            _cores[c].push =
                PushPolicy(config.pushThreshold, config.pushPolicy);
        }
        // The root computation starts on core 0 (first core of the first
        // socket, as the runtime pins it).
        _cores[0].cur = Continuation{dag.root(), dag.frame(dag.root())
                                                     .itemBegin};
    }

    SimResult run();

  private:
    int socketOf(int core) const { return _dist.socketOfWorker(core); }

    /** Active cores [first, last) on @p socket (even-spread packing). */
    std::pair<int, int>
    coresOfSocket(int socket) const
    {
        const int sockets = _machine.numSockets();
        const int per = (_numCores + sockets - 1) / sockets;
        const int first = socket * per;
        const int last = std::min(_numCores, first + per);
        return {first, last};
    }

    bool
    placeMismatch(int core, Place place) const
    {
        if (!_cfg.useMailboxes || !isConcretePlace(place))
            return false;
        if (place >= _machine.numSockets())
            return false; // hint beyond this machine: ignore
        const auto [first, last] = coresOfSocket(place);
        if (first >= last)
            return false; // no active cores there: unsatisfiable hint
        return socketOf(core) != place;
    }

    /**
     * PUSHBACK (Figure 5): deposit @p cont into a random mailbox on its
     * designated socket, retrying up to the pushing threshold. Returns
     * true if handed off. @p cost accumulates attempt costs.
     */
    bool
    pushBack(int core, Continuation cont, double &cost)
    {
        FrameState &fs = _frames[cont.frame];
        const Place target = _dag.frame(cont.frame).place;
        const auto [first, last] = coresOfSocket(target);
        NUMAWS_ASSERT(first < last);
        PushPolicy &policy = _cores[core].push;
        // Pressure signal: a core with a deep own deque can afford more
        // placement attempts before running the frame itself.
        policy.observeDequeDepth(
            static_cast<int64_t>(_cores[core].deq.size()));
        bool pushed = false;
        while (fs.pushCount
               < static_cast<uint32_t>(policy.threshold())) {
            ++_counters.pushAttempts;
            cost += _cfg.pushAttemptCost;
            const int receiver =
                first
                + static_cast<int>(_cores[core].rng.nextBounded(
                    static_cast<uint64_t>(last - first)));
            if (receiver != core && !_cores[receiver].mailbox.has_value()) {
                _cores[receiver].mailbox = cont;
                ++_counters.pushSuccesses;
                policy.onPushSuccess();
                pushed = true;
                break;
            }
            policy.onMailboxFull();
            ++fs.pushCount;
        }
        if (!pushed)
            ++_counters.pushGiveUps;
        return pushed;
    }

    /** One scheduling step for @p core; returns (cost, charge). */
    std::pair<double, Charge> step(int core);

    std::pair<double, Charge> stepExecute(int core);
    std::pair<double, Charge> stepReturn(int core);
    std::pair<double, Charge> stepSchedulingLoop(int core);
    std::pair<double, Charge> stepStealAttempt(int core);

    const ComputationDag &_dag;
    const Machine &_machine;
    SimConfig _cfg;
    int _numCores;
    StealDistribution _dist;
    SimMemory _memory;
    std::vector<FrameState> _frames;
    std::vector<CoreState> _cores;
    SimCounters _counters;
    MemCounters _mem_counters;
    bool _done = false;
    double _doneTime = 0.0;
};

std::pair<double, Charge>
Simulation::stepReturn(int core)
{
    CoreState &c = _cores[core];
    const Frame &f = _dag.frame(c.cur.frame);

    if (!c.deq.empty()) {
        // Parent's continuation is still ours: pop and keep going
        // (Figure 2 lines 3-5). With continuation stealing the tail is
        // necessarily the immediate parent.
        const Continuation parent = c.deq.back();
        c.deq.pop_back();
        NUMAWS_ASSERT(parent.frame == f.parent);
        c.cur = parent;
        return {_cfg.returnCost, Charge::Work};
    }

    // Deque empty: either this is the root finishing, or our parent's
    // continuation was stolen (Figure 2 lines 6-8).
    c.cur = Continuation{};
    if (f.parent == kNoFrame) {
        _done = true;
        _doneTime = c.clock + _cfg.returnCost;
        return {_cfg.returnCost, Charge::Work};
    }
    FrameState &ps = _frames[f.parent];
    NUMAWS_ASSERT(ps.stolen || ps.suspended);
    NUMAWS_ASSERT(ps.joinCount > 0);
    --ps.joinCount;
    if (ps.suspended && ps.joinCount == 0) {
        // We are the last returning child: CHECK_PARENT next.
        c.next = NextAction::CheckParent;
        c.checkParent = f.parent;
    } else {
        c.next = NextAction::Steal;
    }
    return {_cfg.returnCost, Charge::Work};
}

std::pair<double, Charge>
Simulation::stepExecute(int core)
{
    CoreState &c = _cores[core];
    const Frame &f = _dag.frame(c.cur.frame);
    if (c.cur.item == f.itemEnd)
        return stepReturn(core);

    const Item &item = _dag.item(c.cur.item);
    switch (item.kind) {
      case ItemKind::Strand: {
        ++_counters.strandsExecuted;
        const double mem = _memory.cost(socketOf(core), item.accessBegin,
                                        item.accessEnd, _mem_counters);
        ++c.cur.item;
        return {item.cycles + mem, Charge::Work};
      }
      case ItemKind::Spawn: {
        ++_counters.spawns;
        // Push the continuation; descend into the child (Figure 2 lines
        // 1-2). This is continuation stealing: the child runs here, the
        // parent's remainder becomes stealable.
        c.deq.push_back(Continuation{c.cur.frame, c.cur.item + 1});
        c.cur = Continuation{item.child,
                             _dag.frame(item.child).itemBegin};
        return {_cfg.spawnCost, Charge::Work};
      }
      case ItemKind::Sync: {
        FrameState &fs = _frames[c.cur.frame];
        if (!fs.stolen) {
            // Shadow-frame sync is a no-op (Figure 2 line 18).
            ++_counters.trivialSyncs;
            ++c.cur.item;
            return {_cfg.syncTrivialCost, Charge::Work};
        }
        ++_counters.nontrivialSyncs;
        double cost = _cfg.syncNontrivialCost;
        if (fs.joinCount == 0) {
            // CHECKSYNC succeeded; the frame is whole again.
            fs.stolen = false;
            const uint32_t next_item = c.cur.item + 1;
            // Figure 5 lines 5-11: place check + lazy pushback.
            if (placeMismatch(core, f.place)) {
                Continuation cont{c.cur.frame, next_item};
                if (pushBack(core, cont, cost)) {
                    c.cur = Continuation{};
                    c.next = NextAction::Steal;
                    return {cost, Charge::Sched};
                }
            }
            c.cur.item = next_item;
            return {cost, Charge::Sched};
        }
        // Outstanding children: suspend and go steal (lines 12-15).
        ++_counters.suspensions;
        fs.suspended = true;
        fs.resumeItem = c.cur.item + 1;
        c.cur = Continuation{};
        c.next = NextAction::Steal;
        return {cost, Charge::Sched};
      }
    }
    NUMAWS_PANIC("unreachable item kind");
}

std::pair<double, Charge>
Simulation::stepStealAttempt(int core)
{
    CoreState &c = _cores[core];
    if (_numCores <= 1)
        return {_cfg.stealAttemptBase, Charge::Idle};

    ++_counters.stealAttempts;
    const int victim = _cfg.hierarchicalSteals
                           ? _dist.sampleAtLevel(core, c.esc.level(), c.rng)
                           : _dist.sample(core, c.rng);
    const int hops = _machine.hops(socketOf(core), socketOf(victim));
    double cost = _cfg.stealAttemptBase + _cfg.stealPerHop * hops;

    Continuation got;

    // BIASEDSTEALWITHPUSH: coin flip between deque and mailbox.
    if (_cfg.useMailboxes && (!_cfg.coinFlip || c.rng.flip())) {
        cost += _cfg.mailboxCheckCost;
        if (_cores[victim].mailbox.has_value()) {
            const Continuation cont = *_cores[victim].mailbox;
            const Place p = _dag.frame(cont.frame).place;
            if (!placeMismatch(core, p)) {
                // Outcome 2: earmarked for us (or unconstrained): take it.
                _cores[victim].mailbox.reset();
                got = cont;
            } else {
                // Outcome 3: earmarked elsewhere: push it onward; if the
                // threshold is exhausted we take it ourselves.
                _cores[victim].mailbox.reset();
                if (pushBack(core, cont, cost)) {
                    // Work was found (and forwarded): not a failed probe.
                    if (_cfg.hierarchicalSteals)
                        c.esc.onSuccessfulSteal();
                    return {cost, Charge::Sched};
                }
                got = cont;
            }
        }
        // Outcome 1: mailbox empty -> fall through to the deque.
    }

    if (!got.valid()) {
        CoreState &v = _cores[victim];
        if (!v.deq.empty()) {
            got = v.deq.front();
            v.deq.pop_front();
            // Promotion: the frame is now (again) a stolen full frame,
            // and the victim keeps executing one outstanding child.
            ++_counters.steals;
            FrameState &fs = _frames[got.frame];
            fs.stolen = true;
            ++fs.joinCount;
            cost += _cfg.promotionCost;
            // Remote-level batching: one cross-socket round trip moves
            // up to half the victim's deque; extras are promoted now and
            // parked in the private overflow buffer at a reduced
            // per-frame cost (the amortization this knob buys).
            if (_cfg.remoteStealHalf
                && _dist.levelOf(core, victim) == kLevelRemote) {
                // Total batch = ceil(half) of the original deque size,
                // mirroring WsDeque::stealHalf: one frame was already
                // popped above, so take size/2 of what remains.
                int extras = static_cast<int>(v.deq.size() / 2);
                if (extras > _cfg.stealHalfMax - 1)
                    extras = _cfg.stealHalfMax - 1;
                for (int i = 0; i < extras; ++i) {
                    Continuation extra = v.deq.front();
                    v.deq.pop_front();
                    FrameState &es = _frames[extra.frame];
                    es.stolen = true;
                    ++es.joinCount;
                    ++_counters.steals;
                    ++_counters.batchedFrames;
                    cost += _cfg.batchExtraCost;
                    c.overflow.push_back(extra);
                }
                if (extras > 0)
                    ++_counters.batchedSteals;
            }
            // Figure 5: a freshly stolen frame earmarked for a different
            // socket is pushed toward its place.
            if (placeMismatch(core, _dag.frame(got.frame).place)) {
                if (pushBack(core, got, cost)) {
                    if (_cfg.hierarchicalSteals)
                        c.esc.onSuccessfulSteal();
                    return {cost, Charge::Sched};
                }
            }
        }
    } else {
        ++_counters.mailboxSteals;
    }

    if (got.valid()) {
        if (_cfg.hierarchicalSteals)
            c.esc.onSuccessfulSteal();
        c.cur = got;
        return {cost, Charge::Sched};
    }
    if (_cfg.hierarchicalSteals)
        c.esc.onFailedSteal();
    return {cost, Charge::Idle};
}

std::pair<double, Charge>
Simulation::stepSchedulingLoop(int core)
{
    CoreState &c = _cores[core];

    if (c.next == NextAction::CheckParent) {
        // Figure 2 lines 20-22 / Figure 5 lines 18-24.
        c.next = NextAction::Steal;
        const FrameId parent = c.checkParent;
        c.checkParent = kNoFrame;
        FrameState &fs = _frames[parent];
        NUMAWS_ASSERT(fs.suspended && fs.joinCount == 0);
        fs.suspended = false;
        fs.stolen = false; // the sync this frame was parked on is complete
        ++_counters.resumes;
        double cost = _cfg.resumeCost;
        if (placeMismatch(core, _dag.frame(parent).place)) {
            Continuation cont{parent, fs.resumeItem};
            if (pushBack(core, cont, cost))
                return {cost, Charge::Sched};
        }
        c.cur = Continuation{parent, fs.resumeItem};
        return {cost, Charge::Sched};
    }

    // POPMAILBOX (Figure 5 line 26): something parked for this place?
    if (c.mailbox.has_value()) {
        c.cur = *c.mailbox;
        c.mailbox.reset();
        ++_counters.mailboxPops;
        return {_cfg.mailboxCheckCost, Charge::Sched};
    }

    // Drain the batched-steal overflow before probing new victims. The
    // scheduling loop runs with an empty deque, so resuming one of these
    // behaves exactly like a freshly stolen continuation — including the
    // Figure 5 place check.
    if (!c.overflow.empty()) {
        Continuation cont = c.overflow.front();
        c.overflow.pop_front();
        double cost = _cfg.mailboxCheckCost;
        if (placeMismatch(core, _dag.frame(cont.frame).place)) {
            if (pushBack(core, cont, cost))
                return {cost, Charge::Sched};
        }
        c.cur = cont;
        return {cost, Charge::Sched};
    }

    return stepStealAttempt(core);
}

std::pair<double, Charge>
Simulation::step(int core)
{
    if (_cores[core].cur.valid())
        return stepExecute(core);
    return stepSchedulingLoop(core);
}

SimResult
Simulation::run()
{
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap;
    uint64_t seq = 0;
    for (int c = 0; c < _numCores; ++c)
        heap.push(Event{0.0, seq++, c});

    while (!_done) {
        NUMAWS_ASSERT(!heap.empty());
        const Event ev = heap.top();
        heap.pop();
        CoreState &c = _cores[ev.core];
        c.clock = ev.time;
        const auto [cost, charge] = step(ev.core);
        NUMAWS_ASSERT(cost >= 0.0);
        switch (charge) {
          case Charge::Work:
            c.workCycles += cost;
            break;
          case Charge::Sched:
            c.schedCycles += cost;
            break;
          case Charge::Idle:
            c.idleCycles += cost;
            break;
        }
        c.clock += cost;
        heap.push(Event{c.clock, seq++, ev.core});
    }

    SimResult r;
    r.cores = _numCores;
    r.ghz = _machine.ghz();
    r.elapsedCycles = _doneTime;
    r.elapsedSeconds = _machine.cyclesToSeconds(_doneTime);
    for (int c = 0; c < _numCores; ++c) {
        const CoreState &cs = _cores[c];
        // Idle-fill the gap between a core's last event and the end of
        // the computation.
        const double fill = std::max(0.0, _doneTime - cs.clock);
        r.workSeconds += _machine.cyclesToSeconds(cs.workCycles);
        r.schedSeconds += _machine.cyclesToSeconds(cs.schedCycles);
        r.idleSeconds += _machine.cyclesToSeconds(cs.idleCycles + fill);
    }
    r.counters = _counters;
    r.memory = _mem_counters;
    return r;
}

} // namespace

SimResult
simulate(const ComputationDag &dag, const Machine &machine, int cores,
         const SimConfig &config, LatencyModel latency)
{
    Simulation sim(dag, machine, cores, config, latency);
    return sim.run();
}

SimResult
simulatePacked(const ComputationDag &dag, int cores,
               const SimConfig &config, LatencyModel latency)
{
    const Machine machine = Machine::paperMachineSubset(cores);
    return simulate(dag, machine, cores, config, latency);
}

} // namespace numaws::sim
