#include "sim/dag.h"

#include <algorithm>

#include "mem/page_map.h"

namespace numaws::sim {

// ---------------------------------------------------------------------
// ComputationDag
// ---------------------------------------------------------------------

WorkSpan
ComputationDag::workSpan(double spawn_cost, double sync_cost) const
{
    // Children are created after their parents, so child ids exceed parent
    // ids; one reverse sweep computes every frame before its parent needs
    // it (no recursion, safe for deep dags).
    std::vector<double> work(_frames.size(), 0.0);
    std::vector<double> span(_frames.size(), 0.0);

    for (std::size_t i = _frames.size(); i-- > 0;) {
        const Frame &f = _frames[i];
        double w = 0.0;
        double t = 0.0;          // time along the frame's own path
        double pending_max = 0.0; // max completion among unsynced children
        for (uint32_t it = f.itemBegin; it < f.itemEnd; ++it) {
            const Item &item = _items[it];
            switch (item.kind) {
              case ItemKind::Strand:
                w += item.cycles;
                t += item.cycles;
                break;
              case ItemKind::Spawn:
                w += spawn_cost + work[item.child];
                t += spawn_cost;
                pending_max =
                    std::max(pending_max, t + span[item.child]);
                break;
              case ItemKind::Sync:
                w += sync_cost;
                t += sync_cost;
                t = std::max(t, pending_max);
                pending_max = 0.0;
                break;
            }
        }
        work[i] = w;
        span[i] = t;
    }
    return {work[_root], span[_root]};
}

int
ComputationDag::homeOf(RegionId r, uint64_t offset, int sockets) const
{
    const Region &reg = _regions[r];
    switch (reg.policy) {
      case RegionPolicy::Single:
        return reg.home < sockets ? reg.home : 0;
      case RegionPolicy::Interleaved:
        return static_cast<int>((offset / kPageBytes)
                                % static_cast<uint64_t>(sockets));
      case RegionPolicy::Partitioned: {
        if (reg.bytes == 0)
            return 0;
        const uint64_t clamped = std::min(offset, reg.bytes - 1);
        return static_cast<int>(
            clamped * static_cast<uint64_t>(sockets) / reg.bytes);
      }
      case RegionPolicy::Custom: {
        const int home = reg.customHome(offset);
        return home < sockets ? home : home % sockets;
      }
    }
    return 0;
}

bool
ComputationDag::hasPlaceHints() const
{
    for (const Frame &f : _frames)
        if (isConcretePlace(f.place))
            return true;
    return false;
}

uint64_t
ComputationDag::totalRegionBytes() const
{
    uint64_t total = 0;
    for (const Region &r : _regions)
        total += r.bytes;
    return total;
}

FrameId
ComputationDag::append(const ComputationDag &other)
{
    NUMAWS_ASSERT(other._root != kNoFrame);
    const auto frame_off = static_cast<FrameId>(_frames.size());
    const auto item_off = static_cast<uint32_t>(_items.size());
    const auto access_off = static_cast<uint32_t>(_accesses.size());
    const auto region_off = static_cast<RegionId>(_regions.size());

    // Rebase the appended regions past our highest allocation, rounded
    // up to a fresh 1 MiB arena (the builder's base cursor starts at
    // 1 MiB, so every incoming base is >= that and the shift keeps all
    // addresses disjoint and page aligned).
    uint64_t high = 0;
    for (const Region &r : _regions)
        high = std::max(high, r.base + r.bytes);
    constexpr uint64_t kArena = 1ULL << 20;
    const uint64_t delta = (high + kArena - 1) / kArena * kArena;

    for (const Region &r : other._regions) {
        Region copy = r;
        copy.base += delta;
        _regions.push_back(std::move(copy));
    }
    for (const MemAccess &a : other._accesses) {
        MemAccess copy = a;
        copy.region += region_off;
        _accesses.push_back(copy);
    }
    for (const Item &i : other._items) {
        Item copy = i;
        copy.accessBegin += access_off;
        copy.accessEnd += access_off;
        if (copy.child != kNoFrame)
            copy.child += frame_off;
        _items.push_back(copy);
    }
    for (const Frame &f : other._frames) {
        Frame copy = f;
        copy.itemBegin += item_off;
        copy.itemEnd += item_off;
        copy.parentResumeItem += item_off;
        if (copy.parent != kNoFrame)
            copy.parent += frame_off;
        _frames.push_back(copy);
    }
    _numStrands += other._numStrands;
    const FrameId appended_root = other._root + frame_off;
    if (_root == kNoFrame)
        _root = appended_root;
    return appended_root;
}

// ---------------------------------------------------------------------
// DagBuilder
// ---------------------------------------------------------------------

DagBuilder::DagBuilder() = default;

RegionId
DagBuilder::region(std::string name, uint64_t bytes, RegionPolicy policy,
                   int home)
{
    NUMAWS_ASSERT(!_finished);
    NUMAWS_ASSERT(policy != RegionPolicy::Custom);
    Region r;
    r.name = std::move(name);
    r.bytes = bytes;
    r.policy = policy;
    r.home = home;
    r.base = _nextBase;
    _nextBase += (bytes + kPageBytes - 1) / kPageBytes * kPageBytes
                 + kPageBytes; // guard page between regions
    _dag._regions.push_back(std::move(r));
    return static_cast<RegionId>(_dag._regions.size() - 1);
}

RegionId
DagBuilder::regionCustom(std::string name, uint64_t bytes,
                         std::function<int(uint64_t)> home_of)
{
    NUMAWS_ASSERT(!_finished);
    Region r;
    r.name = std::move(name);
    r.bytes = bytes;
    r.policy = RegionPolicy::Custom;
    r.customHome = std::move(home_of);
    r.base = _nextBase;
    _nextBase += (bytes + kPageBytes - 1) / kPageBytes * kPageBytes
                 + kPageBytes;
    _dag._regions.push_back(std::move(r));
    return static_cast<RegionId>(_dag._regions.size() - 1);
}

void
DagBuilder::beginRoot(Place place)
{
    NUMAWS_ASSERT(!_finished && _stack.empty()
                  && _dag._root == kNoFrame);
    Frame f;
    f.place = place;
    f.parent = kNoFrame;
    _dag._frames.push_back(f);
    _dag._root = 0;
    _stack.push_back(OpenFrame{0, {}, 0});
}

void
DagBuilder::spawn(Place place)
{
    requireOpenFrame();
    OpenFrame &parent = _stack.back();

    Frame f;
    f.place = place == kInheritPlace ? _dag._frames[parent.id].place
                                     : place;
    f.parent = parent.id;
    const FrameId child = static_cast<FrameId>(_dag._frames.size());
    _dag._frames.push_back(f);

    Item spawn_item;
    spawn_item.kind = ItemKind::Spawn;
    spawn_item.child = child;
    parent.items.push_back(spawn_item);
    ++parent.spawnsSinceSync;

    _stack.push_back(OpenFrame{child, {}, 0});
}

void
DagBuilder::strand(double cycles, std::initializer_list<MemAccess> accesses)
{
    strand(cycles, std::vector<MemAccess>(accesses));
}

void
DagBuilder::strand(double cycles, const std::vector<MemAccess> &accesses)
{
    requireOpenFrame();
    NUMAWS_ASSERT(cycles >= 0.0);
    Item item;
    item.kind = ItemKind::Strand;
    item.cycles = cycles;
    item.accessBegin = static_cast<uint32_t>(_dag._accesses.size());
    for (const MemAccess &a : accesses) {
        NUMAWS_ASSERT(a.region >= 0
                      && a.region
                             < static_cast<RegionId>(_dag._regions.size()));
        NUMAWS_ASSERT(a.offset + a.bytes <= _dag._regions[a.region].bytes);
        if (a.bytes > 0)
            _dag._accesses.push_back(a);
    }
    item.accessEnd = static_cast<uint32_t>(_dag._accesses.size());
    _stack.back().items.push_back(item);
    ++_dag._numStrands;
}

void
DagBuilder::sync()
{
    requireOpenFrame();
    Item item;
    item.kind = ItemKind::Sync;
    _stack.back().items.push_back(item);
    _stack.back().spawnsSinceSync = 0;
}

void
DagBuilder::end()
{
    requireOpenFrame();
    // Cilk semantics: implicit sync at the end of every spawning function.
    if (_stack.back().spawnsSinceSync > 0)
        sync();

    OpenFrame open = std::move(_stack.back());
    _stack.pop_back();

    Frame &f = _dag._frames[open.id];
    f.itemBegin = static_cast<uint32_t>(_dag._items.size());
    for (std::size_t k = 0; k < open.items.size(); ++k) {
        const Item &item = open.items[k];
        if (item.kind == ItemKind::Spawn) {
            // The parent's continuation resumes at the next item.
            _dag._frames[item.child].parentResumeItem =
                f.itemBegin + static_cast<uint32_t>(k) + 1;
        }
        _dag._items.push_back(item);
    }
    f.itemEnd = static_cast<uint32_t>(_dag._items.size());
}

ComputationDag
DagBuilder::finish()
{
    NUMAWS_ASSERT(!_finished);
    NUMAWS_ASSERT(_stack.empty());
    NUMAWS_ASSERT(_dag._root != kNoFrame);
    _finished = true;
    return std::move(_dag);
}

void
DagBuilder::requireOpenFrame() const
{
    NUMAWS_ASSERT(!_finished && !_stack.empty());
}

} // namespace numaws::sim
