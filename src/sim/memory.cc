#include "sim/memory.h"

namespace numaws::sim {

SimMemory::SimMemory(const Machine &machine, const ComputationDag &dag,
                     LatencyModel latency, uint64_t granule_bytes)
    : _machine(machine),
      _dag(dag),
      _latency(latency),
      _granuleBytes(granule_bytes)
{
    _llcs.reserve(static_cast<std::size_t>(machine.numSockets()));
    for (int s = 0; s < machine.numSockets(); ++s)
        _llcs.emplace_back(machine.llcBytes(), granule_bytes);
}

double
SimMemory::cost(int socket, uint32_t access_begin, uint32_t access_end,
                MemCounters &counters)
{
    double cycles = 0.0;
    LlcModel &llc = _llcs[socket];
    const int sockets = _machine.numSockets();

    for (uint32_t a = access_begin; a < access_end; ++a) {
        const MemAccess &acc = _dag.access(a);
        const Region &reg = _dag.region(acc.region);
        const uint64_t first = acc.offset / _granuleBytes;
        const uint64_t last = (acc.offset + acc.bytes - 1) / _granuleBytes;
        for (uint64_t g = first; g <= last; ++g) {
            // Bytes of this access inside granule g.
            const uint64_t g_lo = g * _granuleBytes;
            const uint64_t g_hi = g_lo + _granuleBytes;
            const uint64_t lo = std::max(acc.offset, g_lo);
            const uint64_t hi = std::min(acc.offset + acc.bytes, g_hi);
            const uint64_t lines = (hi - lo + 63) / 64;

            const bool hit = llc.access(reg.base + g_lo);
            const int home = _dag.homeOf(acc.region, lo, sockets);
            const int hops = _machine.hops(socket, home);
            // First line pays full latency; the rest of the contiguous
            // run streams behind the prefetcher.
            const double line = _latency.lineCost(hit, hops);
            cycles += line
                      + static_cast<double>(lines - 1) * line
                            * _latency.streamFraction;
            if (hit)
                counters.llcHitLines += lines;
            else if (hops == 0)
                counters.localDramLines += lines;
            else
                counters.remoteDramLines += lines;
        }
    }
    return cycles;
}

} // namespace numaws::sim
