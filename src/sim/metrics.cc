#include "sim/metrics.h"

#include <cstdio>

namespace numaws::sim {

std::string
SimResult::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "P=%d T=%.4fs W=%.4fs S=%.4fs I=%.4fs steals=%llu "
                  "pushes=%llu remote=%.1f%%",
                  cores, elapsedSeconds, workSeconds, schedSeconds,
                  idleSeconds,
                  static_cast<unsigned long long>(counters.steals),
                  static_cast<unsigned long long>(counters.pushSuccesses),
                  memory.remoteFraction() * 100.0);
    return buf;
}

} // namespace numaws::sim
