/**
 * @file
 * Deterministic co-runner interference model for the simulator (PR 10).
 *
 * An InterferenceTrace is a list of intervals during which external
 * load squeezes one socket: `coresStolen` of the socket's cores are
 * time-sliced against a pinned co-runner (the worker keeps only a
 * small share of the core — kStolenShare), and every core of the
 * socket may additionally be slowed by `slowdownPermille` (shared
 * LLC/membw contention). The event loop charges both effects as step
 * cost multipliers, so a trace perturbs the virtual timeline exactly
 * the way a real co-runner perturbs wall time — and byte-
 * deterministically per seed, which is what lets the bench gate
 * adapt-vs-static bounds strictly.
 *
 * Affected cores are the socket's top-ranked ones (the *last*
 * `coresStolen` cores of its range) — the same rank order
 * InterferenceCore retires workers in, so an adapting run parks
 * exactly the squeezed cores first.
 *
 * The trace also synthesizes the per-socket pressure signal the
 * threaded PressureSensor measures (per-mille of an epoch lost), so
 * the simulator drives the identical InterferenceCore hysteresis
 * ladder: pressure = stolen share of the socket plus the slowdown
 * share of the remaining cores.
 *
 * A null trace on SimConfig disables every hook; an *empty* trace
 * (no intervals) runs the hooks with nothing to charge and must
 * produce byte-identical results to the null case — the bench gates
 * this invariant.
 */
#ifndef NUMAWS_SIM_INTERFERENCE_H
#define NUMAWS_SIM_INTERFERENCE_H

#include <algorithm>
#include <vector>

namespace numaws::sim {

/** One burst of external load on one socket, in virtual cycles.
 * Half-open: active for start <= t < end. */
struct InterferenceInterval
{
    double startCycles = 0.0;
    double endCycles = 0.0;
    int socket = 0;
    /** Cores of the socket time-sliced against a pinned co-runner
     * (the top-ranked ones; each keeps kStolenShare of its cycles). */
    int coresStolen = 0;
    /** Extra per-step cost on every core of the socket, in per-mille
     * (250 = every step costs 1.25x). */
    int slowdownPermille = 0;
};

/** Seeded-schedule-friendly co-runner model (file docs). */
struct InterferenceTrace
{
    /** Share of a stolen core the worker keeps: a pinned busy-loop
     * co-runner and the worker round-robin on ~equal quanta, but the
     * worker also eats the migration/cache-refill tax — 1/8 matches
     * the catastrophe the threaded bench provokes. */
    static constexpr double kStolenShare = 0.125;

    std::vector<InterferenceInterval> intervals;

    /** Cores of @p socket stolen at instant @p t (max over active
     * intervals — overlapping bursts don't stack). */
    int
    stolenOn(int socket, double t) const
    {
        int stolen = 0;
        for (const InterferenceInterval &iv : intervals) {
            if (iv.socket == socket && iv.startCycles <= t
                && t < iv.endCycles)
                stolen = std::max(stolen, iv.coresStolen);
        }
        return stolen;
    }

    /** Slowdown on @p socket at instant @p t, per-mille (max over
     * active intervals). */
    int
    slowdownOn(int socket, double t) const
    {
        int slow = 0;
        for (const InterferenceInterval &iv : intervals) {
            if (iv.socket == socket && iv.startCycles <= t
                && t < iv.endCycles)
                slow = std::max(slow, iv.slowdownPermille);
        }
        return slow;
    }

    /**
     * Step-cost multiplier for the core holding @p rankFromTop on
     * @p socket at instant @p t. Stolen cores (rank below the stolen
     * count) pay 1/kStolenShare; the rest of the socket pays the
     * slowdown factor; calm sockets pay 1.0.
     */
    double
    costFactor(int socket, int rankFromTop, double t) const
    {
        if (rankFromTop < stolenOn(socket, t))
            return 1.0 / kStolenShare;
        const int slow = slowdownOn(socket, t);
        return slow > 0 ? 1.0 + static_cast<double>(slow) / 1000.0
                        : 1.0;
    }

    /**
     * The pressure sample (per-mille of the epoch lost) the socket's
     * sensor would publish at instant @p t: the stolen cores' lost
     * share plus the remaining cores' slowdown share, averaged over
     * the *active* workers — the same unit support/pressure.h
     * measures. @p retiredFromTop is how many top-ranked workers the
     * ladder has already parked: parked workers publish no samples
     * (the threaded PressureSensor only runs on live workers), and
     * since retirement parks the stolen cores first, the remaining
     * workers see only the residual squeeze. This is what makes the
     * ladder converge instead of overshooting — once the stolen cores
     * are parked the signal drops to the slowdown share, and a mild
     * slowdown lands in the dead band that *holds* the retirement
     * rather than deepening it.
     */
    int
    pressureAt(int socket, double t, int coresOnSocket,
               int retiredFromTop = 0) const
    {
        const int active = coresOnSocket - retiredFromTop;
        if (active <= 0)
            return 0;
        const int stolen =
            std::min(stolenOn(socket, t), coresOnSocket);
        const int stolen_active =
            std::max(0, stolen - retiredFromTop);
        const int slow = slowdownOn(socket, t);
        // A stolen core loses (1 - kStolenShare); a slowed one loses
        // slow/(1000+slow) of its wall time to the inflation.
        const double lost_stolen =
            static_cast<double>(stolen_active) * (1.0 - kStolenShare);
        const double lost_slow =
            static_cast<double>(active - stolen_active)
            * (static_cast<double>(slow)
               / (1000.0 + static_cast<double>(slow)));
        const double pm = 1000.0 * (lost_stolen + lost_slow)
                          / static_cast<double>(active);
        return pm >= 1000.0 ? 1000 : static_cast<int>(pm);
    }

    bool empty() const { return intervals.empty(); }
};

} // namespace numaws::sim

#endif // NUMAWS_SIM_INTERFERENCE_H
