/**
 * @file
 * Memory system of the simulated NUMA machine: one shared LLC per socket
 * plus the latency model, resolving each strand's accesses into cycles.
 *
 * This is where work inflation comes from: the same strand costs more when
 * executed on a socket far from its data or when its lines are not in the
 * local LLC. The scheduler decides *where* strands run; this model prices
 * that decision.
 */
#ifndef NUMAWS_SIM_MEMORY_H
#define NUMAWS_SIM_MEMORY_H

#include <cstdint>
#include <vector>

#include "mem/latency_model.h"
#include "mem/llc_model.h"
#include "sim/dag.h"
#include "topology/machine.h"

namespace numaws::sim {

/** Counters split by service level, for the remote-access statistics. */
struct MemCounters
{
    uint64_t llcHitLines = 0;
    uint64_t localDramLines = 0;
    uint64_t remoteDramLines = 0;

    uint64_t
    totalLines() const
    {
        return llcHitLines + localDramLines + remoteDramLines;
    }

    double
    remoteFraction() const
    {
        const uint64_t t = totalLines();
        return t == 0 ? 0.0
                      : static_cast<double>(remoteDramLines)
                            / static_cast<double>(t);
    }

    void
    merge(const MemCounters &o)
    {
        llcHitLines += o.llcHitLines;
        localDramLines += o.localDramLines;
        remoteDramLines += o.remoteDramLines;
    }
};

/** Per-socket LLCs + latency model for one simulation run. */
class SimMemory
{
  public:
    /**
     * @param granule_bytes LLC tracking granule; strands are charged per
     *        64-byte line but residency is tracked per granule.
     */
    SimMemory(const Machine &machine, const ComputationDag &dag,
              LatencyModel latency = {}, uint64_t granule_bytes = 4096);

    /**
     * Cycles for the accesses of one strand executed on @p socket,
     * updating that socket's LLC and the counters.
     */
    double cost(int socket, uint32_t access_begin, uint32_t access_end,
                MemCounters &counters);

    const LatencyModel &latency() const { return _latency; }
    const LlcModel &llc(int socket) const { return _llcs[socket]; }

  private:
    const Machine &_machine;
    const ComputationDag &_dag;
    LatencyModel _latency;
    uint64_t _granuleBytes;
    std::vector<LlcModel> _llcs;
};

} // namespace numaws::sim

#endif // NUMAWS_SIM_MEMORY_H
