#include "sim/serving.h"

#include <cmath>

#include "support/panic.h"
#include "support/rng.h"

namespace numaws::sim {

std::vector<double>
arrivalCycles(const ArrivalProcess &process, int count, double ghz)
{
    NUMAWS_ASSERT(count >= 0);
    NUMAWS_ASSERT(process.ratePerSec > 0.0);
    const double cycles_per_sec = ghz * 1e9;
    Rng rng(process.seed);
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(count));

    // Exponential inter-arrival draw; 1 - nextDouble() is in (0, 1], so
    // the log argument never hits zero.
    const auto exp_gap_sec = [&rng](double rate) {
        return -std::log(1.0 - rng.nextDouble()) / rate;
    };

    double t = 0.0;
    switch (process.kind) {
      case ArrivalProcess::Kind::Poisson:
        for (int i = 0; i < count; ++i) {
            t += exp_gap_sec(process.ratePerSec) * cycles_per_sec;
            out.push_back(t);
        }
        break;
      case ArrivalProcess::Kind::Burst: {
        const int burst = process.burstSize > 1 ? process.burstSize : 1;
        // Bursts at the per-burst rate keep the average job rate equal
        // to ratePerSec while concentrating the admission edges.
        const double burst_rate = process.ratePerSec / burst;
        while (static_cast<int>(out.size()) < count) {
            t += exp_gap_sec(burst_rate) * cycles_per_sec;
            for (int i = 0; i < burst && static_cast<int>(out.size()) < count;
                 ++i)
                out.push_back(t);
        }
        break;
      }
    }
    return out;
}

} // namespace numaws::sim
