/**
 * @file
 * Open-loop serving mode for the simulated machine.
 *
 * PR 6's submission front door, mirrored in the simulator: instead of one
 * root computation seeded on core 0, a *job list* — independent root
 * frames grafted into one dag via ComputationDag::append — arrives over
 * virtual time. Each job carries an arrival cycle and a priority class;
 * the simulated scheduling loop claims admitted jobs from per-class
 * lanes (best *effective* class first, mirroring JobQueue plus
 * ShedCore's priority aging; strict nominal order when aging is off)
 * before probing victims, and under the parking model an admission
 * issues the same targeted socket wake Runtime::notifyAdmission does —
 * escalated to every parked core while ShedCore::unparkPressure()
 * stands, and backed by the same Spawn-boundary preemption directive
 * Runtime::enqueueJob raises when ServingPolicy::preempt is on.
 *
 * Arrivals are generated up front from a seeded process (Poisson or
 * bursty), so serving runs are byte-reproducible per seed: the same
 * property the closed-loop simulator has, extended to open-loop latency
 * studies. Per-job latency is accounted exactly as the threaded engine's
 * JobHandle does — arrival (submit) to root-frame return (finish) — and
 * folded into the same LatencyHist plus exact sorted percentiles.
 */
#ifndef NUMAWS_SIM_SERVING_H
#define NUMAWS_SIM_SERVING_H

#include <cstdint>
#include <vector>

#include "runtime/job.h"
#include "sim/dag.h"
#include "sim/scheduler.h"
#include "support/latency_hist.h"

namespace numaws::sim {

/** One job: an independent root frame injected at a virtual instant. */
struct SimJob
{
    /** Root frame inside the merged dag (ComputationDag::append). */
    FrameId root = kNoFrame;
    double arrivalCycles = 0.0;
    /** Priority class, mirroring JobClass: 0 latency, 1 normal, 2 batch. */
    int cls = 1;
    /** Absolute deadline instant, cycles; 0 = none. Mirrors
     * JobOptions::deadlineNs: a job whose deadline passes while queued
     * is skipped at claim time; one that finishes past it resolves
     * Expired at root return (the deterministic analogue of the
     * cooperative boundary check). */
    double deadlineCycles = 0.0;
    /** Virtual instant a cancel request lands, cycles; 0 = never.
     * Mirrors JobHandle::cancel(): still-queued at that instant means
     * skipped at claim; already running means resolved Cancelled at
     * root return (the sim's fork-join bodies are boundary-dense, so
     * mid-run cancels always land). */
    double cancelAtCycles = 0.0;
};

/** Measured timeline of one job, in machine cycles. */
struct SimJobStats
{
    double arrivalCycles = 0.0;
    double startCycles = 0.0;  ///< first scheduled onto a core
    double finishCycles = 0.0; ///< root frame returned (or resolution)
    /** Terminal outcome, same taxonomy as the threaded engine. */
    JobOutcome outcome = JobOutcome::Pending;
    /** Rejected *by the QueueDelay shedder* (outcome is Rejected for
     * both causes; this bit is the admission-reject vs shed split). */
    bool shed = false;

    double latencyCycles() const { return finishCycles - arrivalCycles; }
    double queueCycles() const { return startCycles - arrivalCycles; }
};

/** Outcome of one serving run. */
struct ServingResult
{
    /** The usual engine result; elapsed spans first arrival to last
     * finish, and idle time includes the open-loop waiting between
     * jobs (that waiting is the elastic pool's parking opportunity). */
    SimResult sim;
    std::vector<SimJobStats> jobs;
    /** Per-job latency in nanoseconds over *served* (Done) jobs, same
     * histogram the threaded runtime folds into RuntimeStats. */
    LatencyHist latency;
    /** Exact percentiles from the sorted Done-job latencies, in
     * microseconds (the bench gates use these, not the bucketed
     * histogram, so gate noise is purely scheduling). */
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    /** Queue-delay (arrival -> claim) percentiles over jobs a core
     * actually claimed, microseconds: the overload signal the
     * QueueDelay policy regulates. */
    double queueP50Us = 0.0;
    double queueP99Us = 0.0;
    /** @name Outcome tallies (jobs.size() = done + expired + cancelled
     * + rejected; `shed` is the subset of rejected evicted after
     * admission by the QueueDelay policy). */
    /// @{
    uint64_t done = 0;
    uint64_t expired = 0;
    uint64_t cancelled = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    /// @}
    /** Done jobs per second of elapsed virtual time: the protected
     * throughput the overload gate bounds from below. */
    double goodputPerSec = 0.0;
};

/** Seeded arrival-time generator configuration. */
struct ArrivalProcess
{
    enum class Kind : uint8_t {
        /** Exponential inter-arrival gaps at ratePerSec. */
        Poisson,
        /** burstSize simultaneous jobs per burst, bursts spaced by
         * exponential gaps with mean burstSize/ratePerSec (same average
         * rate, maximally lumpy admission edges). */
        Burst,
    };
    Kind kind = Kind::Poisson;
    double ratePerSec = 1000.0;
    int burstSize = 8;
    uint64_t seed = 0x5eed;
};

/**
 * Generate @p count arrival instants in machine cycles (@p ghz clock),
 * sorted ascending. Deterministic per (process, count, ghz).
 */
std::vector<double> arrivalCycles(const ArrivalProcess &process, int count,
                                  double ghz);

/**
 * Run @p jobs (roots inside @p dag, sorted by arrivalCycles) open-loop
 * on @p cores simulated cores of @p machine under @p config. No core is
 * pre-seeded with work: everything flows through admission, so a run
 * with zero jobs is invalid (asserted).
 */
ServingResult simulateServing(const ComputationDag &dag,
                              const std::vector<SimJob> &jobs,
                              const Machine &machine, int cores,
                              const SimConfig &config,
                              LatencyModel latency = {});

/** Convenience: serving on the packed paper-machine subset. */
ServingResult simulateServingPacked(const ComputationDag &dag,
                                    const std::vector<SimJob> &jobs,
                                    int cores, const SimConfig &config,
                                    LatencyModel latency = {});

} // namespace numaws::sim

#endif // NUMAWS_SIM_SERVING_H
