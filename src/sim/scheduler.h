/**
 * @file
 * Discrete-event simulation of work stealing on a NUMA machine.
 *
 * The simulated scheduler implements the paper's pseudocode literally:
 * Figure 2 (the Cilk Plus scheduler: spawn pushes the continuation, a
 * returning child pops or detects a stolen parent, nontrivial syncs
 * suspend, CHECK_PARENT resumes the suspended parent) and Figure 5 (the
 * NUMA-WS additions: place checks with PUSHBACK at nontrivial sync, at
 * CHECK_PARENT, and after successful steals; POPMAILBOX in the scheduling
 * loop; BIASEDSTEALWITHPUSH with the mailbox-vs-deque coin flip). The
 * classic and NUMA-WS schedulers are the same engine under different
 * SimConfig knobs, so ablations toggle one mechanism at a time.
 *
 * Because this engine really steals *continuations* (a stolen frame's
 * execution state is a (frame, item) pair), it reproduces the paper's
 * protocol more faithfully than any library runtime can; every evaluation
 * figure is produced here.
 *
 * The adaptive extensions mirror the threaded runtime's knobs one-for-one
 * so ablations compare like with like:
 *  - hierarchicalSteals + stealEscalationFailures: level-by-level victim
 *    search (core -> place -> socket -> remote) with per-level escalation
 *    after consecutive failed attempts (StealEscalation); at the
 *    outermost level every victim is reachable, so a starving core always
 *    steals against the place hint rather than idling.
 *  - pushPolicy (PushPolicyKind::Constant | ::Adaptive): the pushing
 *    threshold becomes pluggable; the adaptive rule widens under
 *    own-deque pressure and tightens when target mailboxes reject
 *    deposits. pushThreshold remains the constant value / adaptive base.
 *  - remoteStealHalf + stealHalfMax + batchExtraCost: a steal landing on
 *    a remote-level victim moves up to half its deque in one event; the
 *    first continuation is resumed immediately and the extras park in the
 *    thief's private overflow buffer, drained in its scheduling loop
 *    before the next steal (each extra costs batchExtraCost instead of a
 *    full promotion+probe round trip — that is the amortization).
 */
#ifndef NUMAWS_SIM_SCHEDULER_H
#define NUMAWS_SIM_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sched/parking.h"
#include "sched/push_policy.h"
#include "sim/dag.h"
#include "sim/memory.h"
#include "sim/metrics.h"
#include "support/rng.h"
#include "topology/machine.h"
#include "topology/steal_distribution.h"

namespace numaws::sim {

/** Scheduler policy + cost knobs for one simulated run. */
struct SimConfig
{
    /** Locality-biased victim selection (false == uniform, classic WS). */
    bool biasedSteals = true;
    BiasWeights biasWeights{};
    /** Mailboxes + lazy work pushing (false == classic WS). */
    bool useMailboxes = true;
    /**
     * Flip a coin between deque and mailbox on each steal (Section IV
     * requires it); false = always inspect the mailbox first (ablation).
     */
    bool coinFlip = true;
    /** Constant pushing threshold; also the adaptive policy's base. */
    int pushThreshold = 4;
    /** Pushing-threshold policy (constant reproduces the paper). */
    PushPolicyConfig pushPolicy{};
    /** Hierarchical level-by-level victim search with escalation. */
    bool hierarchicalSteals = false;
    /** Consecutive failed steals per level before widening the search
     * (fixed budget / adaptive base). */
    int stealEscalationFailures = 2;
    /** Fixed (constant budget) or Adaptive (per-level success-rate EWMA)
     * escalation; only meaningful with hierarchicalSteals. */
    EscalationPolicy escalationPolicy = EscalationPolicy::Fixed;
    /**
     * Victim selection for hierarchical steals: Distance is the blind
     * PR 1 ladder; Occupancy consults the simulated OccupancyBoard
     * (exact here: the sim publishes every deque/mailbox transition) to
     * skip dry levels and weight occupied victims; OccupancyAffinity
     * additionally boosts sockets homing the regions of the strand this
     * core last executed.
     */
    VictimPolicy victimPolicy = VictimPolicy::Distance;
    /** Mailbox slots per core (the paper's protocol is capacity 1). */
    int mailboxCapacity = 1;
    /**
     * Idle-core parking model (mirrors Runtime::idleWait). 0 disables
     * the model entirely — cores spin through failed probes as before,
     * keeping every pre-existing configuration's event sequence
     * byte-identical. When > 0, a core parks after this many
     * consecutive fruitless probes (failed steals and dry board polls)
     * and wakes per parkPolicy, paying boardCheckCost per wakeup check.
     */
    int parkAfterFailures = 0;
    /**
     * Timer parking wakes every parkPeriodCycles regardless of work
     * (the threaded runtime's 200us at the paper machine's 2.2 GHz);
     * Board parking wakes a parked socket when its occupancy words go
     * 0 -> nonzero, wakeLatencyCycles after the publish, with
     * parkFallbackCycles as the lost-wakeup / cross-socket insurance.
     */
    ParkPolicy parkPolicy = ParkPolicy::Timer;
    double parkPeriodCycles = 440000.0;    ///< 200us at 2.2 GHz
    double parkFallbackCycles = 2200000.0; ///< 1ms at 2.2 GHz
    double wakeLatencyCycles = 4400.0;     ///< ~2us: futex wake + sched-in
    /** PUSHBACK receiver selection (mirrors RuntimeOptions::pushTarget):
     * Random probes blind; Board samples the complement of the board's
     * mailbox bits, falling back to Random when no receiver has room. */
    PushTarget pushTarget = PushTarget::Random;
    /** Steal-half batching for remote-level (>= two-hop) steals. */
    bool remoteStealHalf = false;
    /** Max continuations one batched remote steal may move (matches
     * RuntimeOptions::stealHalfMax so ablations compare like with
     * like). */
    int stealHalfMax = 8;

    /** @name Event costs in cycles */
    /// @{
    double spawnCost = 8.0;          ///< work path: push continuation
    double syncTrivialCost = 2.0;    ///< work path: shadow-frame sync
    double returnCost = 4.0;         ///< work path: pop on child return
    double stealAttemptBase = 120.0; ///< probe a victim (idle if failed)
    double stealPerHop = 60.0;       ///< extra probe cost per QPI hop
    double promotionCost = 250.0;    ///< successful steal bookkeeping
    double syncNontrivialCost = 120.0;
    double resumeCost = 100.0;       ///< resume a suspended full frame
    double mailboxCheckCost = 40.0;  ///< POPMAILBOX / mailbox inspection
    double pushAttemptCost = 140.0;  ///< one PUSHBACK attempt
    double batchExtraCost = 60.0;    ///< per extra frame in a batched steal
    /** Reading the occupancy board: ~2 words per socket of read-mostly
     * shared lines, mostly L1/L2 hits after the first scan. Charged on
     * a dry poll that *replaces* a victim probe AND on every informed
     * probe (the consult that steered it), so the policy ablation
     * prices the board on both paths. Far below stealAttemptBase by
     * design. */
    double boardCheckCost = 16.0;
    /// @}

    /** Zero all runtime overheads: the serial elision (TS). */
    bool serialElision = false;

    uint64_t seed = 0x5eed;

    /** Classic work stealing as implemented by Cilk Plus (Figure 2). */
    static SimConfig
    classicWs()
    {
        SimConfig c;
        c.biasedSteals = false;
        c.useMailboxes = false;
        return c;
    }

    /** The full NUMA-WS scheduler (Figure 5). */
    static SimConfig
    numaWs()
    {
        return SimConfig{};
    }

    /**
     * NUMA-WS plus every adaptive extension: hierarchical victim search
     * with escalation, the congestion-adaptive pushing threshold, and
     * remote steal-half batching. Since PR 3 the victim policy defaults
     * to OccupancyAffinity — the informed ladder soaked through PR 2's
     * BENCH_victim_policy gates (heat ~0.98x flat, matmul probes
     * ~0.73x flat) before being promoted; pass VictimPolicy::Distance
     * explicitly to get the blind PR 1 ladder.
     */
    static SimConfig
    adaptiveNumaWs()
    {
        SimConfig c;
        c.hierarchicalSteals = true;
        c.pushPolicy.kind = PushPolicyKind::Adaptive;
        c.remoteStealHalf = true;
        c.victimPolicy = VictimPolicy::OccupancyAffinity;
        return c;
    }

    /** Serial elision: classic engine with zero parallel overhead. */
    static SimConfig
    serial()
    {
        SimConfig c = classicWs();
        c.serialElision = true;
        c.spawnCost = 0.0;
        c.syncTrivialCost = 0.0;
        c.returnCost = 0.0;
        return c;
    }
};

/**
 * Run @p dag on @p cores simulated cores of @p machine under @p config.
 *
 * Cores are spread evenly across the machine's sockets (socket-major,
 * matching the runtime's startup policy and Figure 9's packed sockets).
 */
SimResult simulate(const ComputationDag &dag, const Machine &machine,
                   int cores, const SimConfig &config,
                   LatencyModel latency = {});

/**
 * Convenience: simulate on the paper machine subset that packs @p cores
 * tightly onto the fewest sockets (Figure 9's methodology).
 */
SimResult simulatePacked(const ComputationDag &dag, int cores,
                         const SimConfig &config, LatencyModel latency = {});

} // namespace numaws::sim

#endif // NUMAWS_SIM_SCHEDULER_H
