/**
 * @file
 * Discrete-event simulation of work stealing on a NUMA machine.
 *
 * The simulated scheduler implements the paper's pseudocode literally:
 * Figure 2 (the Cilk Plus scheduler: spawn pushes the continuation, a
 * returning child pops or detects a stolen parent, nontrivial syncs
 * suspend, CHECK_PARENT resumes the suspended parent) and Figure 5 (the
 * NUMA-WS additions: place checks with PUSHBACK at nontrivial sync, at
 * CHECK_PARENT, and after successful steals; POPMAILBOX in the scheduling
 * loop; BIASEDSTEALWITHPUSH with the mailbox-vs-deque coin flip). The
 * classic and NUMA-WS schedulers are the same engine under different
 * SimConfig knobs, so ablations toggle one mechanism at a time.
 *
 * Because this engine really steals *continuations* (a stolen frame's
 * execution state is a (frame, item) pair), it reproduces the paper's
 * protocol more faithfully than any library runtime can; every evaluation
 * figure is produced here.
 *
 * Since PR 4 every scheduling *decision* — victim selection, the
 * mailbox-vs-deque coin flip, PUSHBACK receivers and thresholds,
 * escalation, dry-poll cadence, parking streaks and tuning — lives in
 * the engine-agnostic StealCore (sched/steal_core.h), configured by the
 * SchedPolicy nested in SimConfig (sched/policy.h, where the full knob
 * table is documented). The simulator is a thin driver that executes
 * the core's actions under its event clock and cost model; determinism
 * survives because each simulated core feeds its seeded RNG and virtual
 * clock through the same core the threaded runtime drives.
 */
#ifndef NUMAWS_SIM_SCHEDULER_H
#define NUMAWS_SIM_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sched/policy.h"
#include "sched/steal_core.h"
#include "sim/dag.h"
#include "sim/interference.h"
#include "sim/memory.h"
#include "sim/metrics.h"
#include "support/rng.h"
#include "topology/machine.h"
#include "topology/steal_distribution.h"

namespace numaws::sim {

/**
 * One simulated run's configuration: the unified scheduling policy
 * plus the simulator-only fidelity knobs (event costs, the parking
 * model switch, serial elision).
 */
struct SimConfig
{
    /** The unified scheduling policy (sched/policy.h), shared verbatim
     * with RuntimeOptions::sched so ablations compare like with like.
     * The simulated OccupancyBoard is exact (every deque/mailbox
     * transition is published at its mutation site), so the informed
     * policies see ground truth here. */
    SchedPolicy sched{};
    /**
     * Model idle-core parking (mirrors Runtime's spin-then-park loop).
     * Off by default — cores spin through failed probes as before,
     * keeping every pre-existing configuration's event sequence
     * byte-identical. When on, a core parks after
     * sched.parkSpinFailures consecutive fruitless probes (failed
     * steals and dry board polls) and wakes per sched.parkPolicy —
     * timer period or board edge + fallback, sched.parkTimerUs /
     * sched.parkFallbackUs converted to cycles at the machine's clock —
     * paying boardCheckCost per wakeup check.
     */
    bool modelParking = false;
    double wakeLatencyCycles = 4400.0; ///< ~2us: futex wake + sched-in

    /** @name Event costs in cycles */
    /// @{
    double spawnCost = 8.0;          ///< work path: push continuation
    double syncTrivialCost = 2.0;    ///< work path: shadow-frame sync
    double returnCost = 4.0;         ///< work path: pop on child return
    double stealAttemptBase = 120.0; ///< probe a victim (idle if failed)
    double stealPerHop = 60.0;       ///< extra probe cost per QPI hop
    double promotionCost = 250.0;    ///< successful steal bookkeeping
    double syncNontrivialCost = 120.0;
    double resumeCost = 100.0;       ///< resume a suspended full frame
    double mailboxCheckCost = 40.0;  ///< POPMAILBOX / mailbox inspection
    double pushAttemptCost = 140.0;  ///< one PUSHBACK attempt
    double batchExtraCost = 60.0;    ///< per extra frame in a batched steal
    /** Reading the occupancy board: ~2 words per socket of read-mostly
     * shared lines, mostly L1/L2 hits after the first scan. Charged on
     * a dry poll that *replaces* a victim probe AND on every informed
     * probe (the consult that steered it), so the policy ablation
     * prices the board on both paths. Far below stealAttemptBase by
     * design. */
    double boardCheckCost = 16.0;
    /// @}

    /** Zero all runtime overheads: the serial elision (TS). */
    bool serialElision = false;

    /**
     * Co-runner interference model (sim/interference.h). Null — the
     * default — disables every hook and keeps all pre-existing
     * configurations byte-identical. Non-null charges the trace's
     * stolen/slowdown cost factors on every affected step and ticks
     * the InterferenceCore epoch ladder with the trace's synthesized
     * pressure; whether the core *adapts* (retires workers, steers
     * admission wakes) is governed separately by
     * sched.serving.interference, so adapt-vs-static ablations run
     * the same trace under both knob settings. Not owned.
     */
    const InterferenceTrace *interference = nullptr;

    uint64_t seed = 0x5eed;

    /** Classic work stealing as implemented by Cilk Plus (Figure 2).
     * Paper-literal baseline: requests the pre-board wake/receiver
     * protocols explicitly (SchedPolicy::paperBaseline), so the PR 4
     * Board defaults never leak into a "paper" row. */
    static SimConfig
    classicWs()
    {
        SimConfig c;
        c.sched = SchedPolicy::paperBaseline();
        c.sched.biasedSteals = false;
        c.sched.useMailboxes = false;
        return c;
    }

    /** The full NUMA-WS scheduler (Figure 5), paper-literal (timer
     * parking, blind random PUSHBACK receivers — see classicWs). */
    static SimConfig
    numaWs()
    {
        SimConfig c;
        c.sched = SchedPolicy::paperBaseline();
        return c;
    }

    /**
     * NUMA-WS plus every adaptive extension: hierarchical victim search
     * with escalation, the congestion-adaptive pushing threshold, and
     * remote steal-half batching, on the shipped SchedPolicy defaults —
     * the OccupancyAffinity informed ladder (PR 3) and, since PR 4, the
     * Board parking/PUSHBACK protocols. Pass VictimPolicy::Distance /
     * ParkPolicy::Timer / PushTarget::Random explicitly for the retired
     * blind baselines.
     */
    static SimConfig
    adaptiveNumaWs()
    {
        SimConfig c;
        c.sched.hierarchicalSteals = true;
        c.sched.pushPolicy.kind = PushPolicyKind::Adaptive;
        c.sched.remoteStealHalf = true;
        return c;
    }

    /** Serial elision: classic engine with zero parallel overhead. */
    static SimConfig
    serial()
    {
        SimConfig c = classicWs();
        c.serialElision = true;
        c.spawnCost = 0.0;
        c.syncTrivialCost = 0.0;
        c.returnCost = 0.0;
        return c;
    }
};

/**
 * Run @p dag on @p cores simulated cores of @p machine under @p config.
 *
 * Cores are spread evenly across the machine's sockets (socket-major,
 * matching the runtime's startup policy and Figure 9's packed sockets).
 */
SimResult simulate(const ComputationDag &dag, const Machine &machine,
                   int cores, const SimConfig &config,
                   LatencyModel latency = {});

/**
 * Convenience: simulate on the paper machine subset that packs @p cores
 * tightly onto the fewest sockets (Figure 9's methodology).
 */
SimResult simulatePacked(const ComputationDag &dag, int cores,
                         const SimConfig &config, LatencyModel latency = {});

} // namespace numaws::sim

#endif // NUMAWS_SIM_SCHEDULER_H
