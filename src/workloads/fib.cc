#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

uint64_t
fibSerial(int n)
{
    return n < 2 ? static_cast<uint64_t>(n)
                 : fibSerial(n - 1) + fibSerial(n - 2);
}

namespace {

uint64_t
fibTask(int n, int cutoff)
{
    if (n < cutoff)
        return fibSerial(n);
    uint64_t a = 0;
    TaskGroup tg;
    tg.spawn([&a, n, cutoff] { a = fibTask(n - 1, cutoff); });
    const uint64_t b = fibTask(n - 2, cutoff);
    tg.sync();
    return a + b;
}

void
fibDagRec(sim::DagBuilder &b, int n, double leaf_cycles)
{
    if (n < 2) {
        b.strand(leaf_cycles, {});
        return;
    }
    // spawn fib(n-1); call fib(n-2); sync. The called branch gets its
    // own frame too: a flattened call would leak its internal syncs into
    // this frame's scope (joining the spawned sibling and serializing),
    // which real Cilk call frames do not do.
    b.spawn(kAnyPlace);
    fibDagRec(b, n - 1, leaf_cycles);
    b.end();
    b.spawn(kAnyPlace);
    fibDagRec(b, n - 2, leaf_cycles);
    b.end();
    b.sync();
}

} // namespace

uint64_t
fibParallel(Runtime &rt, int n, int cutoff)
{
    uint64_t result = 0;
    rt.run([&] { result = fibTask(n, cutoff); });
    return result;
}

sim::ComputationDag
fibDag(int n, double leaf_cycles)
{
    sim::DagBuilder b;
    b.beginRoot();
    fibDagRec(b, n, leaf_cycles);
    b.end();
    return b.finish();
}

} // namespace numaws::workloads
