/**
 * @file
 * cilksort: 4-way parallel mergesort with parallel merge, the paper's
 * Figure 4 program. The top-level recursion carries locality hints
 * (quarter i sorted at place i, merges at the places their inputs came
 * from, final merge unconstrained).
 */
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

void
mergeSeq(const int64_t *a, int64_t na, const int64_t *b, int64_t nb,
         int64_t *out)
{
    std::merge(a, a + na, b, b + nb, out);
}

/** Parallel merge: split the larger input at its midpoint, binary-search
 * the other, recurse on the halves. */
void
mergePar(const int64_t *a, int64_t na, const int64_t *b, int64_t nb,
         int64_t *out, int64_t merge_base)
{
    if (na < nb) {
        mergePar(b, nb, a, na, out, merge_base);
        return;
    }
    if (na + nb <= merge_base || nb == 0) {
        mergeSeq(a, na, b, nb, out);
        return;
    }
    const int64_t ma = na / 2;
    const int64_t mb = std::lower_bound(b, b + nb, a[ma]) - b;
    TaskGroup tg;
    tg.spawn([=] { mergePar(a, ma, b, mb, out, merge_base); });
    mergePar(a + ma, na - ma, b + mb, nb - mb, out + ma + mb, merge_base);
    tg.sync();
}

/** 4-way mergesort of data[0, n) in place, using tmp as scratch. */
void
sortSerialRec(int64_t *data, int64_t n, int64_t *tmp,
              const CilksortParams &p)
{
    if (n <= p.sortBase) {
        std::sort(data, data + n);
        return;
    }
    const int64_t q = n / 4;
    const int64_t sizes[4] = {q, q, q, n - 3 * q};
    int64_t off[4] = {0, q, 2 * q, 3 * q};
    for (int i = 0; i < 4; ++i)
        sortSerialRec(data + off[i], sizes[i], tmp + off[i], p);
    mergeSeq(data, sizes[0], data + off[1], sizes[1], tmp);
    mergeSeq(data + off[2], sizes[2], data + off[3], sizes[3],
             tmp + off[2]);
    mergeSeq(tmp, off[2], tmp + off[2], n - off[2], data);
}

void
sortParRec(int64_t *data, int64_t n, int64_t *tmp, const CilksortParams &p,
           bool hints, bool top)
{
    if (n <= p.sortBase) {
        std::sort(data, data + n);
        return;
    }
    const int64_t q = n / 4;
    const int64_t sizes[4] = {q, q, q, n - 3 * q};
    const int64_t off[4] = {0, q, 2 * q, 3 * q};
    const int places = numPlaces();

    // MERGESORTTOP (Figure 4): quarter i sorted at place i. Only the top
    // level names places; deeper levels inherit. Top-level spawns carry
    // their quarter's data range: on data-plane buffers the spawn-time
    // hint resolves the quarter's registered home even with hints off;
    // on plain heap arrays the range is unregistered and changes nothing.
    {
        TaskGroup tg;
        for (int i = 0; i < 3; ++i) {
            const Place pl =
                top ? chunkPlace(hints, i, 4, places) : kInheritPlace;
            tg.spawn(
                [=] { sortParRec(data + off[i], sizes[i], tmp + off[i], p,
                                 hints, false); },
                pl, top ? data + off[i] : nullptr,
                top ? static_cast<std::size_t>(sizes[i]) * sizeof(int64_t)
                    : 0);
        }
        const Place pl3 =
            top ? chunkPlace(hints, 3, 4, places) : kInheritPlace;
        if (top && isConcretePlace(pl3)) {
            tg.spawn(
                [=] { sortParRec(data + off[3], sizes[3], tmp + off[3], p,
                                 hints, false); },
                pl3, data + off[3],
                static_cast<std::size_t>(sizes[3]) * sizeof(int64_t));
        } else {
            sortParRec(data + off[3], sizes[3], tmp + off[3], p, hints,
                       false);
        }
        tg.sync();
    }
    {
        TaskGroup tg;
        tg.spawn(
            [=] { mergePar(data, sizes[0], data + off[1], sizes[1], tmp,
                           p.mergeBase); },
            top ? chunkPlace(hints, 0, 4, places) : kInheritPlace);
        mergePar(data + off[2], sizes[2], data + off[3], sizes[3],
                 tmp + off[2], p.mergeBase);
        tg.sync();
    }
    // Final merge: @ANY (no place constraint).
    mergePar(tmp, off[2], tmp + off[2], n - off[2], data, p.mergeBase);
}

// ------------------------------------------------------------------
// Dag generator
// ------------------------------------------------------------------

struct CilksortDagCtx
{
    sim::DagBuilder b;
    sim::RegionId in = 0;
    sim::RegionId tmp = 0;
    const CilksortParams *p = nullptr;
};

double
qsortCycles(int64_t n)
{
    return kQsortCyclesPerElemPerLog * static_cast<double>(n)
           * log2At(static_cast<double>(n));
}

/** Merge [aOff, +na) and [bOff, +nb) of @p src into @p dstOff of dst. */
void
mergeDagRec(CilksortDagCtx &c, sim::RegionId src, sim::RegionId dst,
            int64_t a_off, int64_t na, int64_t b_off, int64_t nb,
            int64_t dst_off)
{
    if (na + nb <= c.p->mergeBase || na == 0 || nb == 0) {
        c.b.strand(kMergeCyclesPerElem * static_cast<double>(na + nb),
                   {{src, static_cast<uint64_t>(a_off) * 8,
                     static_cast<uint64_t>(na) * 8},
                    {src, static_cast<uint64_t>(b_off) * 8,
                     static_cast<uint64_t>(nb) * 8},
                    {dst, static_cast<uint64_t>(dst_off) * 8,
                     static_cast<uint64_t>(na + nb) * 8}});
        return;
    }
    // Balanced split (random data makes the binary-search split ~even).
    const int64_t ma = na / 2;
    const int64_t mb = nb / 2;
    c.b.spawn(); // inherit the merge's place
    mergeDagRec(c, src, dst, a_off, ma, b_off, mb, dst_off);
    c.b.end();
    c.b.spawn(); // called branch: own frame, own sync scope
    mergeDagRec(c, src, dst, a_off + ma, na - ma, b_off + mb, nb - mb,
                dst_off + ma + mb);
    c.b.end();
    c.b.sync();
}

void
sortDagRec(CilksortDagCtx &c, int64_t off, int64_t n, bool hints,
           int places, bool top)
{
    if (n <= c.p->sortBase) {
        c.b.strand(qsortCycles(n),
                   {{c.in, static_cast<uint64_t>(off) * 8,
                     static_cast<uint64_t>(n) * 8}});
        return;
    }
    const int64_t q = n / 4;
    const int64_t sizes[4] = {q, q, q, n - 3 * q};
    const int64_t sub_off[4] = {0, q, 2 * q, 3 * q};

    for (int i = 0; i < 4; ++i) {
        const Place pl =
            top ? chunkPlace(hints, i, 4, places) : kInheritPlace;
        c.b.spawn(pl);
        sortDagRec(c, off + sub_off[i], sizes[i], hints, places, false);
        c.b.end();
    }
    c.b.sync();

    c.b.spawn(top ? chunkPlace(hints, 0, 4, places) : kInheritPlace);
    mergeDagRec(c, c.in, c.tmp, off, sizes[0], off + sub_off[1], sizes[1],
                off);
    c.b.end();
    c.b.spawn(top ? chunkPlace(hints, 2, 4, places) : kInheritPlace);
    mergeDagRec(c, c.in, c.tmp, off + sub_off[2], sizes[2],
                off + sub_off[3], sizes[3], off + sub_off[2]);
    c.b.end();
    c.b.sync();

    // Final merge @ANY.
    c.b.spawn(kAnyPlace);
    mergeDagRec(c, c.tmp, c.in, off, sub_off[2], off + sub_off[2],
                n - sub_off[2], off);
    c.b.end();
    c.b.sync();
}

} // namespace

void
cilksortSerial(int64_t *data, int64_t n, int64_t *tmp,
               const CilksortParams &p)
{
    sortSerialRec(data, n, tmp, p);
}

void
cilksortParallel(Runtime &rt, int64_t *data, int64_t n, int64_t *tmp,
                 const CilksortParams &p, bool hints)
{
    rt.run([&] { sortParRec(data, n, tmp, p, hints, true); });
}

CilksortBuffers::CilksortBuffers(Runtime &rt, int64_t n) : n(n)
{
    const auto bytes = static_cast<std::size_t>(n) * sizeof(int64_t);
    if (rt.options().dataHeap == DataHeapPolicy::Pooled) {
        // Four contiguous quarters, homed to match the top-level
        // chunkPlace mapping (chunk c -> socket c * sockets / 4).
        data = static_cast<int64_t *>(
            numa::allocatePartitioned(rt.arena(), bytes, 4));
        tmp = static_cast<int64_t *>(
            numa::allocatePartitioned(rt.arena(), bytes, 4));
    } else {
        data = static_cast<int64_t *>(numa::allocatePlain(bytes));
        tmp = static_cast<int64_t *>(numa::allocatePlain(bytes));
    }
}

CilksortBuffers::~CilksortBuffers()
{
    numa::deallocate(tmp);
    numa::deallocate(data);
}

void
cilksortParallel(Runtime &rt, CilksortBuffers &buf,
                 const CilksortParams &p, bool hints)
{
    rt.run([&] { sortParRec(buf.data, buf.n, buf.tmp, p, hints, true); });
}

sim::ComputationDag
cilksortDag(const CilksortParams &p, int places, Placement placement,
            bool hints)
{
    CilksortDagCtx c;
    c.p = &p;
    const uint64_t bytes = static_cast<uint64_t>(p.n) * 8;
    c.in = c.b.region("in", bytes, regionPolicy(placement));
    c.tmp = c.b.region("tmp", bytes, regionPolicy(placement));
    c.b.beginRoot();
    sortDagRec(c, 0, p.n, hints, places, true);
    c.b.end();
    return c.b.finish();
}

} // namespace numaws::workloads
