/**
 * @file
 * heat: Jacobi-style heat diffusion on a 2D plane over a series of time
 * steps. Rows are partitioned across places; each step sweeps the grid
 * reading the previous buffer and writing the next. Re-touching the same
 * row blocks every step is exactly the reuse NUMA-WS's hints preserve and
 * classic work stealing scatters (the paper's largest inflation: 5.24x).
 */
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

/** One Jacobi sweep over rows [r0, r1) (interior only). */
void
sweepRows(const double *src, double *dst, int64_t nx, int64_t ny,
          int64_t r0, int64_t r1)
{
    r0 = std::max<int64_t>(r0, 1);
    r1 = std::min<int64_t>(r1, nx - 1);
    for (int64_t i = r0; i < r1; ++i) {
        const double *up = src + (i - 1) * ny;
        const double *mid = src + i * ny;
        const double *down = src + (i + 1) * ny;
        double *out = dst + i * ny;
        for (int64_t j = 1; j < ny - 1; ++j)
            out[j] = 0.2 * (mid[j] + up[j] + down[j] + mid[j - 1]
                            + mid[j + 1]);
    }
}

/** Copy boundary rows/cols so Dirichlet edges persist across buffers. */
void
copyBoundary(const double *src, double *dst, int64_t nx, int64_t ny)
{
    std::copy(src, src + ny, dst);
    std::copy(src + (nx - 1) * ny, src + nx * ny, dst + (nx - 1) * ny);
    for (int64_t i = 0; i < nx; ++i) {
        dst[i * ny] = src[i * ny];
        dst[i * ny + ny - 1] = src[i * ny + ny - 1];
    }
}

void
stepParallel(const double *src, double *dst, const HeatParams &p,
             bool hints)
{
    const int places = numPlaces();
    TaskGroup tg;
    // Top-level: one chunk of rows per place, hinted there; recursive
    // splitting below inherits the hint.
    const int chunks = hints && places > 1 ? places : 1;
    for (int c = 0; c < chunks; ++c) {
        const RangeChunk rc = chunkOf(p.nx, chunks, c);
        tg.spawn(
            [=] {
                parallelForRange(rc.begin, rc.end, p.baseRows,
                                 [=](int64_t lo, int64_t hi) {
                                     sweepRows(src, dst, p.nx, p.ny, lo,
                                               hi);
                                 });
            },
            chunkPlace(hints, c, chunks, places));
    }
    tg.sync();
}

/**
 * sweepRows over parted grids. stepParted hands out row ranges that
 * never cross a shard boundary (it splits per shard, and granule ny
 * keeps rows whole), so the mid/out streams resolve once and step by
 * ny — ptr()'s divide per row would otherwise eat the locality win on
 * small grids. Only the first row's up-neighbor and the last row's
 * down-neighbor can live in an adjacent shard. The inner expression is
 * identical to sweepRows so parted results match the flat (and serial)
 * grids bit-for-bit.
 */
void
sweepRowsParted(const PartedVec<double> &src, PartedVec<double> &dst,
                int64_t nx, int64_t ny, int64_t r0, int64_t r1)
{
    r0 = std::max<int64_t>(r0, 1);
    r1 = std::min<int64_t>(r1, nx - 1);
    if (r0 >= r1)
        return;
    const double *mid = src.ptr(static_cast<std::size_t>(r0 * ny));
    double *out = dst.ptr(static_cast<std::size_t>(r0 * ny));
    for (int64_t i = r0; i < r1; ++i) {
        const double *up =
            i == r0 ? src.ptr(static_cast<std::size_t>((i - 1) * ny))
                    : mid - ny;
        const double *down =
            i == r1 - 1 ? src.ptr(static_cast<std::size_t>((i + 1) * ny))
                        : mid + ny;
        for (int64_t j = 1; j < ny - 1; ++j)
            out[j] = 0.2 * (mid[j] + up[j] + down[j] + mid[j - 1]
                            + mid[j + 1]);
        mid += ny;
        out += ny;
    }
}

void
copyBoundaryParted(const PartedVec<double> &src, PartedVec<double> &dst,
                   int64_t nx, int64_t ny)
{
    const std::size_t last =
        static_cast<std::size_t>(nx - 1) * static_cast<std::size_t>(ny);
    std::copy(src.ptr(0), src.ptr(0) + ny, dst.ptr(0));
    std::copy(src.ptr(last), src.ptr(last) + ny, dst.ptr(last));
    // Side columns, one contiguous row run per shard (resolving every
    // row through ptr() costs a divide per call).
    for (int s = 0; s < dst.numShards(); ++s) {
        const int64_t rows = static_cast<int64_t>(dst.shardSize(s)) / ny;
        const double *in = src.shardData(s);
        double *out = dst.shardData(s);
        for (int64_t r = 0; r < rows; ++r, in += ny, out += ny) {
            out[0] = in[0];
            out[ny - 1] = in[ny - 1];
        }
    }
}

void
stepParted(const PartedVec<double> &src, PartedVec<double> &dst,
           const HeatParams &p)
{
    // One task per shard via forEachShard: each spawn carries its
    // shard's data range, so the spawn-time placement hint lands it on
    // the shard's home deque — no chunkPlace here, placement falls out
    // of the data plane.
    dst.forEachShard([&src, &dst, &p](int s, double *,
                                      std::size_t count) {
        const int64_t r0 = static_cast<int64_t>(dst.shardBegin(s)) / p.ny;
        const int64_t rows = static_cast<int64_t>(count) / p.ny;
        parallelForRange(r0, r0 + rows, p.baseRows,
                         [&](int64_t lo, int64_t hi) {
                             sweepRowsParted(src, dst, p.nx, p.ny, lo,
                                             hi);
                         });
    });
}

// ------------------------------------------------------------------
// Dag generator
// ------------------------------------------------------------------

struct HeatDagCtx
{
    sim::DagBuilder b;
    sim::RegionId buf[2] = {0, 0};
    const HeatParams *p = nullptr;
};

/** Recursive row-range split; leaf = sweep of a row block. */
void
sweepDagRec(HeatDagCtx &c, int src, int64_t r0, int64_t r1)
{
    const HeatParams &p = *c.p;
    if (r1 - r0 <= p.baseRows) {
        const uint64_t row_bytes = static_cast<uint64_t>(p.ny) * 8;
        const int64_t lo = std::max<int64_t>(r0 - 1, 0);
        const int64_t hi = std::min<int64_t>(r1 + 1, p.nx);
        c.b.strand(
            kHeatCyclesPerCell * static_cast<double>((r1 - r0) * p.ny),
            {{c.buf[src], static_cast<uint64_t>(lo) * row_bytes,
              static_cast<uint64_t>(hi - lo) * row_bytes},
             {c.buf[1 - src], static_cast<uint64_t>(r0) * row_bytes,
              static_cast<uint64_t>(r1 - r0) * row_bytes}});
        return;
    }
    const int64_t mid = r0 + (r1 - r0) / 2;
    c.b.spawn(); // inherit the chunk's place
    sweepDagRec(c, src, r0, mid);
    c.b.end();
    c.b.spawn(); // called branch: own frame, own sync scope
    sweepDagRec(c, src, mid, r1);
    c.b.end();
    c.b.sync();
}

} // namespace

void
heatSerial(double *a, double *b, const HeatParams &p)
{
    double *src = a;
    double *dst = b;
    for (int64_t t = 0; t < p.steps; ++t) {
        copyBoundary(src, dst, p.nx, p.ny);
        sweepRows(src, dst, p.nx, p.ny, 1, p.nx - 1);
        std::swap(src, dst);
    }
}

void
heatParallel(Runtime &rt, double *a, double *b, const HeatParams &p,
             bool hints)
{
    rt.run([&] {
        double *src = a;
        double *dst = b;
        for (int64_t t = 0; t < p.steps; ++t) {
            copyBoundary(src, dst, p.nx, p.ny);
            stepParallel(src, dst, p, hints);
            std::swap(src, dst);
        }
    });
}

void
heatParallel(Runtime &rt, PartedVec<double> &a, PartedVec<double> &b,
             const HeatParams &p)
{
    const auto cells = static_cast<std::size_t>(p.nx)
                       * static_cast<std::size_t>(p.ny);
    NUMAWS_ASSERT(a.size() == cells && b.size() == cells);
    // Shard boundaries must fall on row boundaries (build the grids
    // with granule ny); the stencil's per-row pointer resolution
    // depends on it.
    NUMAWS_ASSERT(a.shardStride() % static_cast<std::size_t>(p.ny) == 0);
    NUMAWS_ASSERT(b.shardStride() == a.shardStride());
    rt.run([&] {
        PartedVec<double> *src = &a;
        PartedVec<double> *dst = &b;
        for (int64_t t = 0; t < p.steps; ++t) {
            copyBoundaryParted(*src, *dst, p.nx, p.ny);
            stepParted(*src, *dst, p);
            std::swap(src, dst);
        }
    });
}

sim::ComputationDag
heatDag(const HeatParams &p, int places, Placement placement, bool hints)
{
    HeatDagCtx c;
    c.p = &p;
    const uint64_t bytes =
        static_cast<uint64_t>(p.nx) * static_cast<uint64_t>(p.ny) * 8;
    c.buf[0] = c.b.region("A", bytes, regionPolicy(placement));
    c.buf[1] = c.b.region("B", bytes, regionPolicy(placement));
    c.b.beginRoot();
    int src = 0;
    for (int64_t t = 0; t < p.steps; ++t) {
        // One frame per step: top-level chunks hinted at their places.
        const int chunks = hints && places > 1 ? places : 1;
        for (int ch = 0; ch < chunks; ++ch) {
            const int64_t lo = p.nx * ch / chunks;
            const int64_t hi = p.nx * (ch + 1) / chunks;
            c.b.spawn(chunkPlace(hints, ch, chunks, places));
            sweepDagRec(c, src, lo, hi);
            c.b.end();
        }
        c.b.sync();
        src = 1 - src;
    }
    c.b.end();
    return c.b.finish();
}

} // namespace numaws::workloads
