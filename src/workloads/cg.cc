/**
 * @file
 * cg: conjugate gradient solving Ax = b for a banded symmetric positive
 * definite sparse matrix (the NAS CG kernel's structure). Each iteration
 * is one sparse matrix-vector product plus dots and axpys; rows are
 * partitioned across places, and the band keeps the gather on p mostly
 * within the neighbouring partitions — which is why cg rewards locality
 * hints so strongly in the paper (13.1x -> 25.8x speedup at 32 cores).
 */
#include <cmath>

#include "support/rng.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

void
spmvRows(const CsrMatrix &m, const double *x, double *y, int64_t r0,
         int64_t r1)
{
    for (int64_t i = r0; i < r1; ++i) {
        double acc = 0.0;
        for (int64_t k = m.rowBegin[i]; k < m.rowBegin[i + 1]; ++k)
            acc += m.val[k] * x[m.col[k]];
        y[i] = acc;
    }
}

double
dotRange(const double *a, const double *b, int64_t lo, int64_t hi)
{
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i)
        acc += a[i] * b[i];
    return acc;
}

/** Parallel dot product via chunked reduce (deterministic chunking). */
double
dotPar(Runtime &, const double *a, const double *b, int64_t n,
       int64_t base, bool hints)
{
    const int chunks =
        static_cast<int>(std::min<int64_t>(64, (n + base - 1) / base));
    if (chunks <= 1)
        return dotRange(a, b, 0, n);
    std::vector<double> partial(chunks, 0.0);
    TaskGroup tg;
    for (int c = 0; c < chunks; ++c) {
        const RangeChunk rc = chunkOf(n, chunks, c);
        tg.spawn([&, rc, c] { partial[c] = dotRange(a, b, rc.begin,
                                                    rc.end); },
                 chunkPlace(hints, c, chunks, numPlaces()));
    }
    tg.sync();
    double acc = 0.0;
    for (double v : partial)
        acc += v;
    return acc;
}

// ------------------------------------------------------------------
// Dag generator
// ------------------------------------------------------------------

struct CgDagCtx
{
    sim::DagBuilder b;
    sim::RegionId mat = 0; ///< values + columns, rows contiguous
    sim::RegionId vec[4] = {0, 0, 0, 0}; ///< p, q, r, x
    const CgParams *p = nullptr;
    int places = 1;
    bool hints = false;
};

/** Chunk tree over rows with top-level place hints. */
template <typename Leaf>
void
rowTreeDag(CgDagCtx &c, int64_t lo, int64_t hi, const Leaf &leaf,
           bool top)
{
    if (hi - lo <= c.p->baseRows) {
        leaf(lo, hi);
        return;
    }
    if (top && c.hints && c.places > 1) {
        for (int ch = 0; ch < c.places; ++ch) {
            const int64_t a = lo + (hi - lo) * ch / c.places;
            const int64_t b2 = lo + (hi - lo) * (ch + 1) / c.places;
            c.b.spawn(chunkPlace(true, ch, c.places, c.places));
            rowTreeDag(c, a, b2, leaf, false);
            c.b.end();
        }
        c.b.sync();
        return;
    }
    const int64_t mid = lo + (hi - lo) / 2;
    c.b.spawn(); // inherit
    rowTreeDag(c, lo, mid, leaf, false);
    c.b.end();
    c.b.spawn(); // called branch: own frame, own sync scope
    rowTreeDag(c, mid, hi, leaf, false);
    c.b.end();
    c.b.sync();
}

/** One SpMV: q = A p. */
void
spmvDag(CgDagCtx &c)
{
    const CgParams &p = *c.p;
    const uint64_t row_bytes = static_cast<uint64_t>(p.nnzPerRow) * 12;
    rowTreeDag(
        c, 0, p.n,
        [&](int64_t r0, int64_t r1) {
            const int64_t g0 = std::max<int64_t>(0, r0 - p.band);
            const int64_t g1 = std::min<int64_t>(p.n, r1 + p.band);
            c.b.strand(
                kSpmvCyclesPerNnz
                    * static_cast<double>((r1 - r0) * p.nnzPerRow),
                {{c.mat, static_cast<uint64_t>(r0) * row_bytes,
                  static_cast<uint64_t>(r1 - r0) * row_bytes},
                 // Gather on p: band-limited, so a contiguous window.
                 {c.vec[0], static_cast<uint64_t>(g0) * 8,
                  static_cast<uint64_t>(g1 - g0) * 8},
                 {c.vec[1], static_cast<uint64_t>(r0) * 8,
                  static_cast<uint64_t>(r1 - r0) * 8}});
        },
        true);
}

/** Streaming vector op touching @p k of the vectors. */
void
vecOpDag(CgDagCtx &c, std::initializer_list<int> vecs)
{
    const CgParams &p = *c.p;
    std::vector<int> vs(vecs);
    rowTreeDag(
        c, 0, p.n,
        [&](int64_t r0, int64_t r1) {
            std::vector<sim::MemAccess> acc;
            for (int v : vs)
                acc.push_back({c.vec[v], static_cast<uint64_t>(r0) * 8,
                               static_cast<uint64_t>(r1 - r0) * 8});
            c.b.strand(kVecCyclesPerElem
                           * static_cast<double>((r1 - r0))
                           * static_cast<double>(vs.size()),
                       acc);
        },
        true);
}

} // namespace

CsrMatrix
cgMakeMatrix(const CgParams &p, uint64_t seed)
{
    Rng rng(seed);
    CsrMatrix m;
    m.n = p.n;
    m.rowBegin.resize(static_cast<std::size_t>(p.n) + 1, 0);
    for (int64_t i = 0; i < p.n; ++i) {
        // Band entries at distinct offsets around the diagonal plus a
        // dominant diagonal (=> symmetric positive definite enough for CG
        // to converge; the kernel's structure is what matters here).
        std::vector<int64_t> cols;
        cols.push_back(i);
        for (int64_t k = 1; k < p.nnzPerRow; ++k) {
            const int64_t off = 1
                                + static_cast<int64_t>(rng.nextBounded(
                                    static_cast<uint64_t>(p.band)));
            const int64_t c = (k % 2 == 0) ? i + off : i - off;
            if (c >= 0 && c < p.n)
                cols.push_back(c);
        }
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (int64_t c : cols) {
            m.col.push_back(c);
            m.val.push_back(c == i
                                ? static_cast<double>(p.nnzPerRow) + 1.0
                                : -1.0 / static_cast<double>(p.nnzPerRow));
        }
        m.rowBegin[static_cast<std::size_t>(i) + 1] =
            static_cast<int64_t>(m.col.size());
    }
    return m;
}

double
cgSerial(const CsrMatrix &m, const std::vector<double> &b,
         std::vector<double> &x, const CgParams &params)
{
    const int64_t n = m.n;
    x.assign(static_cast<std::size_t>(n), 0.0);
    std::vector<double> r = b;
    std::vector<double> p = b;
    std::vector<double> q(static_cast<std::size_t>(n), 0.0);
    double rr = dotRange(r.data(), r.data(), 0, n);
    for (int64_t it = 0; it < params.iters && rr > 1e-20; ++it) {
        spmvRows(m, p.data(), q.data(), 0, n);
        const double pq = dotRange(p.data(), q.data(), 0, n);
        const double alpha = rr / pq;
        for (int64_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        const double rr_new = dotRange(r.data(), r.data(), 0, n);
        const double beta = rr_new / rr;
        rr = rr_new;
        for (int64_t i = 0; i < n; ++i)
            p[i] = r[i] + beta * p[i];
    }
    return std::sqrt(rr);
}

double
cgParallel(Runtime &rt, const CsrMatrix &m, const std::vector<double> &b,
           std::vector<double> &x, const CgParams &params, bool hints)
{
    const int64_t n = m.n;
    x.assign(static_cast<std::size_t>(n), 0.0);
    std::vector<double> r = b;
    std::vector<double> p = b;
    std::vector<double> q(static_cast<std::size_t>(n), 0.0);
    double result = 0.0;
    rt.run([&] {
        const int64_t base = params.baseRows;
        auto forRows = [&](auto &&body) {
            const int chunks = hints && numPlaces() > 1 ? numPlaces() : 1;
            TaskGroup tg;
            for (int c = 0; c < chunks; ++c) {
                const RangeChunk rc = chunkOf(n, chunks, c);
                tg.spawn(
                    [&, rc] {
                        parallelForRange(rc.begin, rc.end, base, body);
                    },
                    chunkPlace(hints, c, chunks, numPlaces()));
            }
            tg.sync();
        };

        double rr = dotPar(rt, r.data(), r.data(), n, base, hints);
        for (int64_t it = 0; it < params.iters && rr > 1e-20; ++it) {
            forRows([&](int64_t lo, int64_t hi) {
                spmvRows(m, p.data(), q.data(), lo, hi);
            });
            const double pq =
                dotPar(rt, p.data(), q.data(), n, base, hints);
            const double alpha = rr / pq;
            forRows([&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * q[i];
                }
            });
            const double rr_new =
                dotPar(rt, r.data(), r.data(), n, base, hints);
            const double beta = rr_new / rr;
            rr = rr_new;
            forRows([&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i)
                    p[i] = r[i] + beta * p[i];
            });
        }
        result = std::sqrt(rr);
    });
    return result;
}

sim::ComputationDag
cgDag(const CgParams &p, int places, Placement placement, bool hints)
{
    CgDagCtx c;
    c.p = &p;
    c.places = places;
    c.hints = hints;
    const uint64_t mat_bytes = static_cast<uint64_t>(p.n)
                               * static_cast<uint64_t>(p.nnzPerRow) * 12;
    c.mat = c.b.region("A", mat_bytes, regionPolicy(placement));
    const char *names[4] = {"p", "q", "r", "x"};
    for (int v = 0; v < 4; ++v)
        c.vec[v] = c.b.region(names[v], static_cast<uint64_t>(p.n) * 8,
                              regionPolicy(placement));

    c.b.beginRoot();
    for (int64_t it = 0; it < p.iters; ++it) {
        spmvDag(c);               // q = A p
        vecOpDag(c, {0, 1});      // dot(p, q)
        vecOpDag(c, {0, 2, 3});   // x += alpha p; r -= alpha q
        vecOpDag(c, {2});         // dot(r, r)
        vecOpDag(c, {0, 2});      // p = r + beta p
    }
    c.b.end();
    return c.b.finish();
}

} // namespace numaws::workloads
