/**
 * @file
 * Benchmark registry: the paper's table rows, in the paper's order, each
 * with its dag generator and a scaled default input (our simulated
 * machine executes every dag node, so inputs are scaled down from the
 * paper's; EXPERIMENTS.md records the factors).
 */
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

int64_t
scaled(int64_t v, double s, int64_t min_v)
{
    return std::max<int64_t>(min_v, static_cast<int64_t>(
                                        static_cast<double>(v) * s));
}

/** Round down to a power of two (block-structured benchmarks need it). */
uint32_t
pow2Below(int64_t v)
{
    uint32_t p = 1;
    while (static_cast<int64_t>(p) * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

std::vector<SimWorkload>
simWorkloads(double scale)
{
    std::vector<SimWorkload> out;

    {
        CgParams p;
        p.n = scaled(p.n, scale, 4096);
        p.iters = scaled(p.iters, scale, 2);
        p.band = std::min<int64_t>(p.band, p.n / 4);
        p.baseRows = std::max<int64_t>(64, p.n / 64);
        out.push_back(
            {"cg", "n=" + std::to_string(p.n) + " iters="
                       + std::to_string(p.iters),
             [p](int places, Placement pl, bool hints) {
                 return cgDag(p, places, pl, hints);
             }});
    }
    {
        CilksortParams p;
        p.n = scaled(p.n, scale, 1 << 16);
        p.sortBase = std::max<int64_t>(512, p.n / 256);
        p.mergeBase = p.sortBase;
        out.push_back(
            {"cilksort", "n=" + std::to_string(p.n),
             [p](int places, Placement pl, bool hints) {
                 return cilksortDag(p, places, pl, hints);
             }});
    }
    {
        HeatParams p;
        p.steps = scaled(p.steps, scale, 2);
        if (scale < 1.0) {
            p.nx = scaled(p.nx, std::sqrt(scale), 128);
            p.ny = scaled(p.ny, std::sqrt(scale), 128);
        }
        p.baseRows = std::max<int64_t>(4, p.nx / 128);
        out.push_back(
            {"heat", std::to_string(p.nx) + "x" + std::to_string(p.ny)
                         + " x" + std::to_string(p.steps),
             [p](int places, Placement pl, bool hints) {
                 return heatDag(p, places, pl, hints);
             }});
    }
    for (const bool sphere : {false, true}) {
        HullParams p;
        p.onSphere = sphere;
        p.n = scaled(p.n, scale, 1 << 15);
        p.base = std::max<int64_t>(256, p.n / 256);
        out.push_back(
            {sphere ? "hull2" : "hull1", "n=" + std::to_string(p.n),
             [p](int places, Placement pl, bool hints) {
                 return hullDag(p, places, pl, hints);
             }});
    }
    for (const bool z : {false, true}) {
        MatmulParams p;
        p.zLayout = z;
        if (scale < 1.0)
            p.n = std::max<uint32_t>(
                256, pow2Below(static_cast<int64_t>(p.n * std::sqrt(scale))));
        p.block = std::min(p.block, p.n / 8);
        out.push_back(
            {z ? "matmul-z" : "matmul",
             std::to_string(p.n) + "^2 / " + std::to_string(p.block)
                 + "^2",
             [p](int places, Placement pl, bool hints) {
                 return matmulDag(p, places, pl, hints);
             }});
    }
    for (const bool z : {false, true}) {
        StrassenParams p;
        p.zLayout = z;
        if (scale < 1.0)
            p.n = std::max<uint32_t>(
                256, pow2Below(static_cast<int64_t>(p.n * std::sqrt(scale))));
        p.block = std::min(p.block, p.n / 8);
        out.push_back(
            {z ? "strassen-z" : "strassen",
             std::to_string(p.n) + "^2 / " + std::to_string(p.block)
                 + "^2",
             [p](int places, Placement pl, bool hints) {
                 return strassenDag(p, places, pl, hints);
             }});
    }
    return out;
}

} // namespace numaws::workloads
