/**
 * @file
 * Shared helpers for the workload dag generators: placement -> region
 * policy mapping, place-hint assignment for top-level splits, and the
 * cycle-cost constants the analytic models use.
 *
 * Cost constants are calibrated to plausible per-element cycle counts at
 * 2.2 GHz; absolute values only set the scale of reported seconds. The
 * paper comparisons reproduced here are ratios (work inflation, speedup,
 * T1/TS), which depend on the *relative* weight of compute vs memory, not
 * on these absolute constants.
 */
#ifndef NUMAWS_WORKLOADS_COMMON_H
#define NUMAWS_WORKLOADS_COMMON_H

#include <cmath>

#include "workloads/workloads.h"

namespace numaws::workloads {

/** Region policy realizing a Placement on the simulated machine. */
inline sim::RegionPolicy
regionPolicy(Placement p)
{
    switch (p) {
      case Placement::FirstTouch:
        return sim::RegionPolicy::Single; // serial init faults on socket 0
      case Placement::Interleaved:
        return sim::RegionPolicy::Interleaved;
      case Placement::Partitioned:
        return sim::RegionPolicy::Partitioned;
    }
    return sim::RegionPolicy::Single;
}

/**
 * Place for chunk @p chunk of @p chunks at the top-level split, spread
 * over @p places (i-th chunk at place i*places/chunks), or kAnyPlace when
 * hints are disabled.
 */
inline Place
chunkPlace(bool hints, int chunk, int chunks, int places)
{
    if (!hints || places <= 1)
        return kAnyPlace;
    return static_cast<Place>(chunk * places / chunks);
}

/** log2 for cost models (>= 1 to keep leaf costs positive). */
inline double
log2At(double x)
{
    return x < 2.0 ? 1.0 : std::log2(x);
}

/** @name Cycle-cost constants (per element unless noted) */
/// @{
inline constexpr double kQsortCyclesPerElemPerLog = 3.0;
inline constexpr double kMergeCyclesPerElem = 6.0;
inline constexpr double kHeatCyclesPerCell = 8.0;
inline constexpr double kMatmulCyclesPerMadd = 1.5;
inline constexpr double kAddCyclesPerElem = 3.0;
inline constexpr double kHullReduceCyclesPerPoint = 6.0;
inline constexpr double kHullPackCyclesPerPoint = 5.0;
inline constexpr double kSpmvCyclesPerNnz = 10.0;
inline constexpr double kVecCyclesPerElem = 4.0;
/**
 * Kernel-efficiency penalty of row-major blocks relative to contiguous
 * blocked Z-Morton blocks. Strided base-case kernels pay L1/L2/TLB and
 * prefetcher costs *inside* the kernel loop, below the granularity of the
 * LLC model, so the effect is modeled as a multiplier on base-case
 * compute. Calibrated from the paper's own serial times: matmul TS
 * 190.86s vs matmul-z 73.63s => 2.6x; strassen 112.82s vs strassen-z
 * 80.43s => 1.4x (strassen's temps are compact either way, so only the
 * quadrant-facing phases pay).
 */
inline constexpr double kMatmulRowMajorPenalty = 2.6;
inline constexpr double kStrassenRowMajorPenalty = 1.4;
/// @}

} // namespace numaws::workloads

#endif // NUMAWS_WORKLOADS_COMMON_H
