/**
 * @file
 * The paper's benchmark suite (Section V), implemented three ways each:
 *
 *  - a *serial elision*: the same algorithm with parallel constructs
 *    removed (the paper's TS baseline);
 *  - a *real parallel version* running on the threaded runtime
 *    (src/runtime), used for correctness tests and host-measured work
 *    efficiency (T1/TS);
 *  - a *dag generator* lowering the computation into the simulator's
 *    fork-join representation with analytic cycle costs and the same
 *    memory-access pattern, used to reproduce every evaluation figure on
 *    the simulated 32-core machine.
 *
 * Benchmarks: cg (NAS conjugate gradient), cilksort (4-way mergesort with
 * parallel merge, Figure 4), heat (Jacobi 2D), hull (quickhull; two input
 * regimes hull1/hull2), matmul (8-way divide-and-conquer, with and
 * without the blocked Z-Morton layout), strassen (ditto), plus fib as a
 * spawn-overhead microbenchmark.
 */
#ifndef NUMAWS_WORKLOADS_WORKLOADS_H
#define NUMAWS_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/parted_vec.h"
#include "runtime/api.h"
#include "sim/dag.h"

namespace numaws::workloads {

/** Data placement regime for a simulated run (Section V methodology:
 * vanilla Cilk Plus picks the best of first-touch and interleave; NUMA-WS
 * partitions data to match its locality hints). */
enum class Placement { FirstTouch, Interleaved, Partitioned };

/** Everything a bench binary needs to run one benchmark in the sim. */
struct SimWorkload
{
    std::string name;
    /** Input/base-case description for table headers. */
    std::string inputDesc;
    /**
     * Lower the benchmark to a dag.
     * @param places virtual places (== sockets in use).
     * @param placement how regions map to sockets.
     * @param hints whether locality hints are attached to frames.
     */
    std::function<sim::ComputationDag(int places, Placement placement,
                                      bool hints)>
        build;
};

/** All simulated benchmarks in the paper's table order. @p scale in (0,1]
 * shrinks inputs for quick test runs (1.0 == bench defaults). */
std::vector<SimWorkload> simWorkloads(double scale = 1.0);

// ---------------------------------------------------------------------
// fib — spawn-overhead microbenchmark
// ---------------------------------------------------------------------

uint64_t fibSerial(int n);
uint64_t fibParallel(Runtime &rt, int n, int cutoff = 18);
/** Dag: fib tree with unit-leaf costs; used by scheduler property tests. */
sim::ComputationDag fibDag(int n, double leaf_cycles = 400.0);

// ---------------------------------------------------------------------
// cilksort — 4-way parallel mergesort with parallel merge (Figure 4)
// ---------------------------------------------------------------------

struct CilksortParams
{
    int64_t n = 1 << 21;
    int64_t sortBase = 1 << 14;  ///< quicksort below this
    int64_t mergeBase = 1 << 14; ///< sequential merge below this
};

void cilksortSerial(int64_t *data, int64_t n, int64_t *tmp,
                    const CilksortParams &p);
/** Mergesort with locality hints when @p hints (the Figure 4 program). */
void cilksortParallel(Runtime &rt, int64_t *data, int64_t n, int64_t *tmp,
                      const CilksortParams &p, bool hints);
sim::ComputationDag cilksortDag(const CilksortParams &p, int places,
                                Placement placement, bool hints);

/**
 * cilksort buffers on the NUMA data plane: `data` and `tmp` partitioned
 * into four contiguous quarters homed socket-by-socket (the Figure 4
 * partitioning) and registered in the runtime's PageMap, so the
 * top-level quarter spawns resolve real homes — with hints off, the
 * spawn-time placement hint still lands each quarter on its socket.
 * Under DataHeapPolicy::Heap both arrays are plain unregistered heap
 * blocks (the ablation baseline). Must not outlive @p rt.
 */
struct CilksortBuffers
{
    CilksortBuffers(Runtime &rt, int64_t n);
    ~CilksortBuffers();
    CilksortBuffers(const CilksortBuffers &) = delete;
    CilksortBuffers &operator=(const CilksortBuffers &) = delete;

    int64_t *data = nullptr;
    int64_t *tmp = nullptr;
    int64_t n = 0;
};

/** cilksortParallel over data-plane buffers. */
void cilksortParallel(Runtime &rt, CilksortBuffers &buf,
                      const CilksortParams &p, bool hints);

// ---------------------------------------------------------------------
// heat — Jacobi heat diffusion on a 2D plane
// ---------------------------------------------------------------------

struct HeatParams
{
    int64_t nx = 2048;   ///< rows
    int64_t ny = 2048;   ///< columns
    int64_t steps = 16;
    int64_t baseRows = 32;
};

void heatSerial(double *a, double *b, const HeatParams &p);
void heatParallel(Runtime &rt, double *a, double *b, const HeatParams &p,
                  bool hints);
/**
 * heat on the NUMA data plane: grids are PartedVec<double> built with
 * granule @c p.ny (shard boundaries on row boundaries), one task per
 * shard spawned through forEachShard — placement falls out of the
 * shards' registered homes via the spawn-time hint, so there is no
 * hints flag. Sweep arithmetic is expression-identical to heatSerial:
 * results match the serial grid bit-for-bit.
 */
void heatParallel(Runtime &rt, PartedVec<double> &a, PartedVec<double> &b,
                  const HeatParams &p);
sim::ComputationDag heatDag(const HeatParams &p, int places,
                            Placement placement, bool hints);

// ---------------------------------------------------------------------
// matmul — 8-way divide-and-conquer matrix multiply, no temporaries
// ---------------------------------------------------------------------

struct MatmulParams
{
    uint32_t n = 1024;
    uint32_t block = 64;
    bool zLayout = false; ///< blocked Z-Morton data layout (Section III-C)
};

void matmulSerial(const double *a, const double *b, double *c, uint32_t n);
void matmulParallel(Runtime &rt, const double *a, const double *b,
                    double *c, const MatmulParams &p, bool hints);
sim::ComputationDag matmulDag(const MatmulParams &p, int places,
                              Placement placement, bool hints);

// ---------------------------------------------------------------------
// strassen — 7-multiplication recursive matrix multiply
// ---------------------------------------------------------------------

struct StrassenParams
{
    uint32_t n = 1024;
    uint32_t block = 64;
    bool zLayout = false;
};

void strassenSerial(const double *a, const double *b, double *c,
                    uint32_t n, uint32_t block);
void strassenParallel(Runtime &rt, const double *a, const double *b,
                      double *c, const StrassenParams &p);
/** No locality hints, matching the paper (Section V-A). */
sim::ComputationDag strassenDag(const StrassenParams &p, int places,
                                Placement placement, bool hints);

// ---------------------------------------------------------------------
// hull — quickhull convex hull (PBBS); two input regimes
// ---------------------------------------------------------------------

struct HullParams
{
    int64_t n = 1 << 21;
    int64_t base = 1 << 13;
    /** true: points on a circle (hull2, heavy); false: inside (hull1). */
    bool onSphere = false;
};

struct Point
{
    double x, y;
};

/** Returns hull points in counter-clockwise order. */
std::vector<Point> hullSerial(const std::vector<Point> &pts);
std::vector<Point> hullParallel(Runtime &rt, const std::vector<Point> &pts,
                                const HullParams &p, bool hints);
std::vector<Point> hullMakeInput(const HullParams &p, uint64_t seed);
sim::ComputationDag hullDag(const HullParams &p, int places,
                            Placement placement, bool hints);

// ---------------------------------------------------------------------
// cg — conjugate gradient on a banded sparse matrix (NAS)
// ---------------------------------------------------------------------

struct CgParams
{
    int64_t n = 1 << 16;       ///< rows
    int64_t nnzPerRow = 24;    ///< band entries per row
    int64_t band = 4096;       ///< max |col - row|
    int64_t iters = 16;
    int64_t baseRows = 1 << 11;
};

/** Banded CSR matrix (symmetric positive definite by construction). */
struct CsrMatrix
{
    int64_t n = 0;
    std::vector<int64_t> rowBegin; ///< n+1 entries
    std::vector<int64_t> col;
    std::vector<double> val;
};

CsrMatrix cgMakeMatrix(const CgParams &p, uint64_t seed);
/** @return final residual norm after p.iters iterations. */
double cgSerial(const CsrMatrix &m, const std::vector<double> &b,
                std::vector<double> &x, const CgParams &p);
double cgParallel(Runtime &rt, const CsrMatrix &m,
                  const std::vector<double> &b, std::vector<double> &x,
                  const CgParams &p, bool hints);
sim::ComputationDag cgDag(const CgParams &p, int places,
                          Placement placement, bool hints);

} // namespace numaws::workloads

#endif // NUMAWS_WORKLOADS_WORKLOADS_H
