/**
 * @file
 * strassen: seven recursive multiplications plus quadrant additions.
 *
 * The paper attaches no locality hints to strassen (Section V-A discusses
 * why: submatrices are consumed by several of the seven products, so data
 * is necessarily shared across sockets); we reproduce that, so strassen
 * exercises the "NUMA-WS must not hurt" side of the evaluation. The -z
 * variant (dag only) uses the blocked Z-Morton layout for A/B/C, making
 * quadrant reads contiguous.
 */
#include <vector>

#include "layout/blocked_matrix.h"
#include "layout/zmorton.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

/** dst[h x h] (ld ldd) = x (ldx) + s * y (ldy), s in {+1, -1}. */
void
addSub(double *dst, uint32_t ldd, const double *x, uint32_t ldx,
       const double *y, uint32_t ldy, uint32_t h, double s)
{
    for (uint32_t i = 0; i < h; ++i)
        for (uint32_t j = 0; j < h; ++j)
            dst[static_cast<std::size_t>(i) * ldd + j] =
                x[static_cast<std::size_t>(i) * ldx + j]
                + s * y[static_cast<std::size_t>(i) * ldy + j];
}

void
copyBlock(double *dst, uint32_t ldd, const double *x, uint32_t ldx,
          uint32_t h)
{
    for (uint32_t i = 0; i < h; ++i)
        for (uint32_t j = 0; j < h; ++j)
            dst[static_cast<std::size_t>(i) * ldd + j] =
                x[static_cast<std::size_t>(i) * ldx + j];
}

/** Base case: c = a * b (overwrite), all leading dimension ld*. */
void
kernelAssign(const double *a, uint32_t lda, const double *b, uint32_t ldb,
             double *c, uint32_t ldc, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i) {
        double *crow = c + static_cast<std::size_t>(i) * ldc;
        for (uint32_t j = 0; j < n; ++j)
            crow[j] = 0.0;
        for (uint32_t k = 0; k < n; ++k) {
            const double aik = a[static_cast<std::size_t>(i) * lda + k];
            const double *brow = b + static_cast<std::size_t>(k) * ldb;
            for (uint32_t j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
    }
}

/** One Strassen product M_i: operands are built into compact temps, the
 * recursion runs on them, the result lands in a compact h x h buffer. */
struct Quad
{
    const double *ptr;
    uint32_t ld;
};

void strassenRec(const double *a, uint32_t lda, const double *b,
                 uint32_t ldb, double *c, uint32_t ldc, uint32_t n,
                 uint32_t block, bool parallel);

/** Compute one M_i = (xa op ya) * (xb op yb) into @p out (compact). */
void
productTask(Quad xa, Quad ya, double sa, Quad xb, Quad yb, double sb,
            double *out, uint32_t h, uint32_t block, bool parallel)
{
    std::vector<double> ta(static_cast<std::size_t>(h) * h);
    std::vector<double> tb(static_cast<std::size_t>(h) * h);
    if (ya.ptr != nullptr)
        addSub(ta.data(), h, xa.ptr, xa.ld, ya.ptr, ya.ld, h, sa);
    else
        copyBlock(ta.data(), h, xa.ptr, xa.ld, h);
    if (yb.ptr != nullptr)
        addSub(tb.data(), h, xb.ptr, xb.ld, yb.ptr, yb.ld, h, sb);
    else
        copyBlock(tb.data(), h, xb.ptr, xb.ld, h);
    strassenRec(ta.data(), h, tb.data(), h, out, h, h, block, parallel);
}

void
strassenRec(const double *a, uint32_t lda, const double *b, uint32_t ldb,
            double *c, uint32_t ldc, uint32_t n, uint32_t block,
            bool parallel)
{
    if (n <= block) {
        kernelAssign(a, lda, b, ldb, c, ldc, n);
        return;
    }
    const uint32_t h = n / 2;
    const Quad a11{a, lda};
    const Quad a12{a + h, lda};
    const Quad a21{a + static_cast<std::size_t>(h) * lda, lda};
    const Quad a22{a + static_cast<std::size_t>(h) * lda + h, lda};
    const Quad b11{b, ldb};
    const Quad b12{b + h, ldb};
    const Quad b21{b + static_cast<std::size_t>(h) * ldb, ldb};
    const Quad b22{b + static_cast<std::size_t>(h) * ldb + h, ldb};
    const Quad none{nullptr, 0};

    std::vector<double> m(static_cast<std::size_t>(7) * h * h);
    double *mp[7];
    for (int i = 0; i < 7; ++i)
        mp[i] = m.data() + static_cast<std::size_t>(i) * h * h;

    auto run_all = [&](auto &&go) {
        go(0, a11, a22, +1.0, b11, b22, +1.0); // M1=(A11+A22)(B11+B22)
        go(1, a21, a22, +1.0, b11, none, +1.0); // M2=(A21+A22)B11
        go(2, a11, none, +1.0, b12, b22, -1.0); // M3=A11(B12-B22)
        go(3, a22, none, +1.0, b21, b11, -1.0); // M4=A22(B21-B11)
        go(4, a11, a12, +1.0, b22, none, +1.0); // M5=(A11+A12)B22
        go(5, a21, a11, -1.0, b11, b12, +1.0); // M6=(A21-A11)(B11+B12)
        go(6, a12, a22, -1.0, b21, b22, +1.0); // M7=(A12-A22)(B21+B22)
    };

    if (parallel) {
        TaskGroup tg;
        run_all([&](int i, Quad xa, Quad ya, double sa, Quad xb, Quad yb,
                    double sb) {
            if (i < 6) {
                tg.spawn([=, out = mp[i]] {
                    productTask(xa, ya, sa, xb, yb, sb, out, h, block,
                                true);
                });
            } else {
                productTask(xa, ya, sa, xb, yb, sb, mp[i], h, block, true);
            }
        });
        tg.sync();
    } else {
        run_all([&](int i, Quad xa, Quad ya, double sa, Quad xb, Quad yb,
                    double sb) {
            productTask(xa, ya, sa, xb, yb, sb, mp[i], h, block, false);
        });
    }

    // C11 = M1 + M4 - M5 + M7; C12 = M3 + M5; C21 = M2 + M4;
    // C22 = M1 - M2 + M3 + M6.
    double *c11 = c;
    double *c12 = c + h;
    double *c21 = c + static_cast<std::size_t>(h) * ldc;
    double *c22 = c + static_cast<std::size_t>(h) * ldc + h;
    for (uint32_t i = 0; i < h; ++i)
        for (uint32_t j = 0; j < h; ++j) {
            const std::size_t t = static_cast<std::size_t>(i) * h + j;
            const std::size_t o = static_cast<std::size_t>(i) * ldc + j;
            c11[o] = mp[0][t] + mp[3][t] - mp[4][t] + mp[6][t];
            c12[o] = mp[2][t] + mp[4][t];
            c21[o] = mp[1][t] + mp[3][t];
            c22[o] = mp[0][t] - mp[1][t] + mp[2][t] + mp[5][t];
        }
}

// ------------------------------------------------------------------
// Dag generator
// ------------------------------------------------------------------

struct StrassenDagCtx
{
    sim::DagBuilder b;
    sim::RegionId a = 0, bm = 0, c = 0, temps = 0;
    uint64_t tempCursor = 0; ///< element offset bump allocator
    const StrassenParams *p = nullptr;
};

/** An operand in the dag model: region + element offset of a compact
 * (or quadrant-approximated) h x h range. */
struct DagOperand
{
    sim::RegionId region;
    uint64_t elemOffset;
};

/** Approximate access range for an h x h quadrant at (i0, j0). For the Z
 * layout, aligned power-of-two quadrants really are contiguous; for
 * row-major we charge a contiguous range of the same byte count starting
 * at the quadrant origin (the whole matrix is touched at every level by
 * the sibling quadrants, so which exact bytes matters little to the LLC
 * model — documented approximation). */
DagOperand
quadrant(const StrassenDagCtx &ctx, sim::RegionId m, uint64_t n,
         uint64_t i0, uint64_t j0, uint64_t h)
{
    (void)h;
    if (ctx.p->zLayout) {
        const uint64_t bs = ctx.p->block;
        return {m, zMortonEncode(static_cast<uint32_t>(i0 / bs),
                                 static_cast<uint32_t>(j0 / bs))
                       * bs * bs};
    }
    return {m, i0 * n + j0};
}

sim::MemAccess
operandAccess(DagOperand op, uint64_t h)
{
    return {op.region, op.elemOffset * 8, h * h * 8};
}

/** Penalty on phases that touch A/B/C quadrants (strided when row-major;
 * the temps are compact either way). */
double
quadrantPenalty(const StrassenDagCtx &ctx)
{
    return ctx.p->zLayout ? 1.0 : kStrassenRowMajorPenalty;
}

/**
 * Emit @p chunks spawned strands splitting an element-wise pass of
 * @p total_cycles over the given accesses (byte ranges split evenly) —
 * the parallel additions of the real code.
 */
void
chunkedPassDag(StrassenDagCtx &ctx, double total_cycles,
               const std::vector<sim::MemAccess> &accesses, int chunks)
{
    for (int ch = 0; ch < chunks; ++ch) {
        std::vector<sim::MemAccess> part;
        part.reserve(accesses.size());
        for (const sim::MemAccess &a : accesses) {
            const uint64_t lo = a.bytes * ch / chunks;
            const uint64_t hi = a.bytes * (ch + 1) / chunks;
            if (hi > lo)
                part.push_back({a.region, a.offset + lo, hi - lo});
        }
        ctx.b.spawn(kAnyPlace);
        ctx.b.strand(total_cycles / chunks, part);
        ctx.b.end();
    }
    ctx.b.sync();
}

void
strassenDagRec(StrassenDagCtx &ctx, DagOperand a, DagOperand b,
               DagOperand c, uint64_t h)
{
    const StrassenParams &p = *ctx.p;
    if (h <= p.block) {
        ctx.b.strand(kMatmulCyclesPerMadd * static_cast<double>(h) * h * h,
                     {operandAccess(a, h), operandAccess(b, h),
                      operandAccess(c, h)});
        return;
    }
    const uint64_t hh = h / 2;
    // 14 operand temps + 7 product temps, bump-allocated so concurrent
    // subtrees never alias.
    const uint64_t base = ctx.tempCursor;
    ctx.tempCursor += 21 * hh * hh;
    auto temp = [&](int i) {
        return DagOperand{ctx.temps, base + static_cast<uint64_t>(i) * hh
                                          * hh};
    };

    // Seven products, first six spawned, the seventh called (mirroring
    // the real code), no locality hints. Each product frame prepares its
    // own two operands (the additions run inside the spawned task, as in
    // the real implementation) and recurses on compact temps.
    for (int i = 0; i < 7; ++i) {
        const DagOperand oa = temp(i);
        const DagOperand ob = temp(7 + i);
        const DagOperand oc = temp(14 + i);
        auto body = [&] {
            // Operand prep: read A and B quadrants, write 2 hh^2 temps.
            chunkedPassDag(
                ctx,
                kAddCyclesPerElem * quadrantPenalty(ctx) * 2.0
                    * static_cast<double>(hh) * hh,
                {operandAccess(a, h), operandAccess(b, h),
                 {ctx.temps, oa.elemOffset * 8, hh * hh * 8},
                 {ctx.temps, ob.elemOffset * 8, hh * hh * 8}},
                4);
            strassenDagRec(ctx, oa, ob, oc, hh);
        };
        if (i < 6) {
            ctx.b.spawn(kAnyPlace);
            body();
            ctx.b.end();
        } else {
            ctx.b.spawn(kAnyPlace); // called branch still its own frame
            body();
            ctx.b.end();
            ctx.b.sync();
        }
    }

    // Combination pass: read the 7 products, write C (parallel chunks).
    chunkedPassDag(ctx,
                   kAddCyclesPerElem * quadrantPenalty(ctx) * 8.0
                       * static_cast<double>(hh) * hh,
                   {{ctx.temps, (base + 14 * hh * hh) * 8,
                     7 * hh * hh * 8},
                    operandAccess(c, h)},
                   4);
}

/** Total temp elements the recursion will bump-allocate. */
uint64_t
tempElems(uint64_t n, uint64_t block)
{
    if (n <= block)
        return 0;
    const uint64_t hh = n / 2;
    return 21 * hh * hh + 7 * tempElems(hh, block);
}

} // namespace

void
strassenSerial(const double *a, const double *b, double *c, uint32_t n,
               uint32_t block)
{
    strassenRec(a, n, b, n, c, n, n, block, false);
}

void
strassenParallel(Runtime &rt, const double *a, const double *b, double *c,
                 const StrassenParams &p)
{
    rt.run([&] {
        strassenRec(a, p.n, b, p.n, c, p.n, p.n, p.block, true);
    });
}

sim::ComputationDag
strassenDag(const StrassenParams &p, int places, Placement placement,
            bool hints)
{
    (void)places;
    (void)hints; // strassen carries no hints (Section V-A)
    NUMAWS_ASSERT(isPow2(p.n) && isPow2(p.block) && p.block <= p.n);
    StrassenDagCtx ctx;
    ctx.p = &p;
    const uint64_t bytes = static_cast<uint64_t>(p.n) * p.n * 8;
    ctx.a = ctx.b.region("A", bytes, regionPolicy(placement));
    ctx.bm = ctx.b.region("B", bytes, regionPolicy(placement));
    ctx.c = ctx.b.region("C", bytes, regionPolicy(placement));
    // Temps are written by whichever socket computes them; model as
    // interleaved (they have no stable home).
    ctx.temps = ctx.b.region("temps", tempElems(p.n, p.block) * 8 + 8,
                             sim::RegionPolicy::Interleaved);

    ctx.b.beginRoot();
    strassenDagRec(ctx, quadrant(ctx, ctx.a, p.n, 0, 0, p.n),
                   quadrant(ctx, ctx.bm, p.n, 0, 0, p.n),
                   quadrant(ctx, ctx.c, p.n, 0, 0, p.n), p.n);
    ctx.b.end();
    return ctx.b.finish();
}

} // namespace numaws::workloads
