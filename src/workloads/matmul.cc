/**
 * @file
 * matmul: 8-way divide-and-conquer matrix multiplication (C += A * B) with
 * no temporaries — the two k-halves of each quadrant are serialized by a
 * sync. The -z variant stores matrices in the blocked Z-Morton layout of
 * Section III-C, making each base-case block contiguous (and homeable on
 * one socket).
 */
#include <algorithm>

#include "layout/blocked_matrix.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

/** Base-case kernel: row-major C[b x b] += A[b x b] * B[b x b], leading
 * dimension @p ld. */
void
kernelRowMajor(const double *a, const double *b, double *c, uint32_t n,
               uint32_t ld)
{
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t k = 0; k < n; ++k) {
            const double aik = a[static_cast<std::size_t>(i) * ld + k];
            const double *brow = b + static_cast<std::size_t>(k) * ld;
            double *crow = c + static_cast<std::size_t>(i) * ld;
            for (uint32_t j = 0; j < n; ++j)
                crow[j] += aik * brow[j];
        }
}

void
matmulSerialRec(const double *a, const double *b, double *c, uint32_t n,
                uint32_t ld, uint32_t block)
{
    if (n <= block) {
        kernelRowMajor(a, b, c, n, ld);
        return;
    }
    const uint32_t h = n / 2;
    const std::size_t r = static_cast<std::size_t>(h) * ld; // row offset
    // Quadrant pointer helper: (i, j) in {0, 1}^2.
    auto q = [&](const double *m, int i, int j) {
        return m + static_cast<std::size_t>(i) * r + j * h;
    };
    auto qc = [&](double *m, int i, int j) {
        return m + static_cast<std::size_t>(i) * r + j * h;
    };
    for (int half = 0; half < 2; ++half)
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                matmulSerialRec(q(a, i, half), q(b, half, j), qc(c, i, j),
                                h, ld, block);
}

void
matmulParRec(const double *a, const double *b, double *c, uint32_t n,
             uint32_t ld, uint32_t block, bool hints, bool top)
{
    if (n <= block) {
        kernelRowMajor(a, b, c, n, ld);
        return;
    }
    const uint32_t h = n / 2;
    const std::size_t r = static_cast<std::size_t>(h) * ld;
    auto q = [&](const double *m, int i, int j) {
        return m + static_cast<std::size_t>(i) * r + j * h;
    };
    auto qc = [&](double *m, int i, int j) {
        return m + static_cast<std::size_t>(i) * r + j * h;
    };
    const int places = numPlaces();
    for (int half = 0; half < 2; ++half) {
        TaskGroup tg;
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j) {
                // Hint: C quadrant (i, j) at place 2i + j (top level).
                const Place pl = top
                                     ? chunkPlace(hints, 2 * i + j, 4,
                                                  places)
                                     : kInheritPlace;
                const double *aq = q(a, i, half);
                const double *bq = q(b, half, j);
                double *cq = qc(c, i, j);
                tg.spawn(
                    [=] {
                        matmulParRec(aq, bq, cq, h, ld, block, hints,
                                     false);
                    },
                    pl);
            }
        tg.sync();
    }
}

// ------------------------------------------------------------------
// Dag generator
// ------------------------------------------------------------------

struct MatmulDagCtx
{
    sim::DagBuilder b;
    sim::RegionId a = 0, bm = 0, c = 0;
    const MatmulParams *p = nullptr;
};

/** Leaf block accesses for matrix @p m at block (bi, bj). */
std::vector<sim::MemAccess>
blockAccess(const MatmulDagCtx &ctx, sim::RegionId m, uint32_t bi,
            uint32_t bj)
{
    const MatmulParams &p = *ctx.p;
    const uint64_t bb = static_cast<uint64_t>(p.block);
    std::vector<sim::MemAccess> out;
    if (p.zLayout) {
        // Blocked Z-Morton: the block is one contiguous range.
        out.push_back({m, zMortonEncode(bi, bj) * bb * bb * 8,
                       bb * bb * 8});
    } else {
        // Row-major: one strided access per block row.
        const uint64_t n = p.n;
        for (uint64_t r = 0; r < bb; ++r)
            out.push_back({m,
                           ((static_cast<uint64_t>(bi) * bb + r) * n
                            + static_cast<uint64_t>(bj) * bb)
                               * 8,
                           bb * 8});
    }
    return out;
}

/** Recursive 8-way dag over block-index ranges [bi0,+s) x [bj0,+s). */
void
matmulDagRec(MatmulDagCtx &ctx, uint32_t bi0, uint32_t bj0, uint32_t bk0,
             uint32_t s, bool hints, int places, bool top)
{
    const MatmulParams &p = *ctx.p;
    if (s == 1) {
        std::vector<sim::MemAccess> acc = blockAccess(ctx, ctx.a, bi0, bk0);
        auto bacc = blockAccess(ctx, ctx.bm, bk0, bj0);
        auto cacc = blockAccess(ctx, ctx.c, bi0, bj0);
        acc.insert(acc.end(), bacc.begin(), bacc.end());
        acc.insert(acc.end(), cacc.begin(), cacc.end());
        const double bb = static_cast<double>(p.block);
        const double penalty =
            p.zLayout ? 1.0 : kMatmulRowMajorPenalty;
        ctx.b.strand(kMatmulCyclesPerMadd * penalty * bb * bb * bb, acc);
        return;
    }
    const uint32_t h = s / 2;
    for (int half = 0; half < 2; ++half) {
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j) {
                const Place pl =
                    top ? chunkPlace(hints, 2 * i + j, 4, places)
                        : kInheritPlace;
                ctx.b.spawn(pl);
                matmulDagRec(ctx, bi0 + i * h, bj0 + j * h,
                             bk0 + half * h, h, hints, places, false);
                ctx.b.end();
            }
        ctx.b.sync();
    }
}

} // namespace

void
matmulSerial(const double *a, const double *b, double *c, uint32_t n)
{
    matmulSerialRec(a, b, c, n, n, 32);
}

void
matmulParallel(Runtime &rt, const double *a, const double *b, double *c,
               const MatmulParams &p, bool hints)
{
    rt.run([&] { matmulParRec(a, b, c, p.n, p.n, p.block, hints, true); });
}

sim::ComputationDag
matmulDag(const MatmulParams &p, int places, Placement placement,
          bool hints)
{
    NUMAWS_ASSERT(isPow2(p.n) && isPow2(p.block) && p.block <= p.n);
    // Quadrant hints only make sense when block homes align with the
    // hint partition, which requires the blocked Z-Morton layout; hinted
    // row-major quadrants fight the page-granular row partition (the
    // paper's matmul row is effectively unhinted: "beyond data layout
    // transformation, NUMA-WS does not provide more benefit").
    if (!p.zLayout)
        hints = false;
    MatmulDagCtx ctx;
    ctx.p = &p;
    const uint64_t bytes = static_cast<uint64_t>(p.n) * p.n * 8;

    auto make_region = [&](const char *name) {
        if (p.zLayout && placement == Placement::Partitioned) {
            // Blocked Z-Morton + partitioned: the Z curve's quadrants are
            // contiguous, so a plain partition homes each top-level C
            // quadrant's blocks on one socket — the co-location the
            // layout transformation exists to enable.
            return ctx.b.region(name, bytes,
                                sim::RegionPolicy::Partitioned);
        }
        return ctx.b.region(name, bytes, regionPolicy(placement));
    };
    ctx.a = make_region("A");
    ctx.bm = make_region("B");
    ctx.c = make_region("C");

    ctx.b.beginRoot();
    matmulDagRec(ctx, 0, 0, 0, p.n / p.block, hints, places, true);
    ctx.b.end();
    return ctx.b.finish();
}

} // namespace numaws::workloads
