/**
 * @file
 * hull: quickhull convex hull (from the problem-based benchmark suite).
 *
 * The algorithm repeatedly draws maximum triangles and eliminates interior
 * points. Input regime matters enormously (Section V): points *inside* a
 * circle (hull1) are eliminated almost immediately, so the run is
 * dominated by the initial full-array partition (prefix-sum-like passes
 * with little locality); points *on* a circle (hull2) are all hull points,
 * so recursion is deep and compute-heavy.
 */
#include <algorithm>
#include <cmath>

#include "support/rng.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace numaws::workloads {

namespace {

double
cross(const Point &o, const Point &a, const Point &b)
{
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

// ------------------------------------------------------------------
// Serial quickhull
// ------------------------------------------------------------------

/** Hull points strictly between a and b (left side), in boundary order. */
void
hullRecSerial(const std::vector<Point> &pts, const Point &a, const Point &b,
              std::vector<Point> &out)
{
    if (pts.empty())
        return;
    // Farthest point from line a->b.
    std::size_t far = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const double d = cross(a, b, pts[i]);
        if (d > best) {
            best = d;
            far = i;
        }
    }
    const Point f = pts[far];
    std::vector<Point> left1, left2;
    for (const Point &p : pts) {
        if (cross(a, f, p) > 0.0)
            left1.push_back(p);
        else if (cross(f, b, p) > 0.0)
            left2.push_back(p);
    }
    hullRecSerial(left1, a, f, out);
    out.push_back(f);
    hullRecSerial(left2, f, b, out);
}

// ------------------------------------------------------------------
// Parallel quickhull
// ------------------------------------------------------------------

/** Parallel filter: keep points satisfying pred, chunked. */
template <typename Pred>
std::vector<Point>
filterPar(const std::vector<Point> &pts, int64_t base, const Pred &pred)
{
    if (static_cast<int64_t>(pts.size()) <= base) {
        std::vector<Point> out;
        out.reserve(pts.size());
        for (const Point &p : pts)
            if (pred(p))
                out.push_back(p);
        return out;
    }
    const int64_t n = static_cast<int64_t>(pts.size());
    const int chunks =
        static_cast<int>(std::min<int64_t>(64, (n + base - 1) / base));
    std::vector<std::vector<Point>> parts(chunks);
    TaskGroup tg;
    for (int c = 0; c < chunks; ++c) {
        const RangeChunk rc = chunkOf(n, chunks, c);
        tg.spawn([&, rc, c] {
            auto &dst = parts[c];
            dst.reserve(static_cast<std::size_t>(rc.end - rc.begin));
            for (int64_t i = rc.begin; i < rc.end; ++i)
                if (pred(pts[i]))
                    dst.push_back(pts[i]);
        });
    }
    tg.sync();
    std::size_t total = 0;
    for (const auto &part : parts)
        total += part.size();
    std::vector<Point> out;
    out.reserve(total);
    for (const auto &part : parts)
        out.insert(out.end(), part.begin(), part.end());
    return out;
}

/** Parallel argmax of score over pts (chunked reduce). */
template <typename Score>
std::size_t
argmaxPar(const std::vector<Point> &pts, int64_t base, const Score &score)
{
    const int64_t n = static_cast<int64_t>(pts.size());
    if (n <= base) {
        std::size_t best = 0;
        double best_score = score(pts[0]);
        for (std::size_t i = 1; i < pts.size(); ++i) {
            const double sc = score(pts[i]);
            if (sc > best_score) {
                best_score = sc;
                best = i;
            }
        }
        return best;
    }
    const int chunks =
        static_cast<int>(std::min<int64_t>(64, (n + base - 1) / base));
    std::vector<std::size_t> local(chunks, 0);
    TaskGroup tg;
    for (int c = 0; c < chunks; ++c) {
        const RangeChunk rc = chunkOf(n, chunks, c);
        tg.spawn([&, rc, c] {
            std::size_t best = static_cast<std::size_t>(rc.begin);
            double best_score = score(pts[best]);
            for (int64_t i = rc.begin + 1; i < rc.end; ++i) {
                const double sc = score(pts[i]);
                if (sc > best_score) {
                    best_score = sc;
                    best = static_cast<std::size_t>(i);
                }
            }
            local[c] = best;
        });
    }
    tg.sync();
    std::size_t best = local[0];
    for (int c = 1; c < chunks; ++c)
        if (score(pts[local[c]]) > score(pts[best]))
            best = local[c];
    return best;
}

void
hullRecParallel(const std::vector<Point> &pts, const Point &a,
                const Point &b, std::vector<Point> &out, int64_t base)
{
    if (static_cast<int64_t>(pts.size()) <= base) {
        hullRecSerial(pts, a, b, out);
        return;
    }
    const std::size_t far = argmaxPar(
        pts, base, [&](const Point &p) { return cross(a, b, p); });
    const Point f = pts[far];
    std::vector<Point> left1, left2;
    {
        TaskGroup tg;
        tg.spawn([&] {
            left1 = filterPar(pts, base, [&](const Point &p) {
                return cross(a, f, p) > 0.0;
            });
        });
        left2 = filterPar(pts, base, [&](const Point &p) {
            return cross(f, b, p) > 0.0;
        });
        tg.sync();
    }
    // Children in boundary order; the two sides can themselves be
    // computed in parallel into separate buffers.
    std::vector<Point> out1, out2;
    {
        TaskGroup tg;
        tg.spawn([&] { hullRecParallel(left1, a, f, out1, base); });
        hullRecParallel(left2, f, b, out2, base);
        tg.sync();
    }
    out.insert(out.end(), out1.begin(), out1.end());
    out.push_back(f);
    out.insert(out.end(), out2.begin(), out2.end());
}

// ------------------------------------------------------------------
// Dag generator
// ------------------------------------------------------------------

struct HullDagCtx
{
    sim::DagBuilder b;
    sim::RegionId pts = 0;  ///< point coordinates
    sim::RegionId pts2 = 0; ///< packed output of partitions
    sim::RegionId aux = 0;  ///< flags / prefix sums
    const HullParams *p = nullptr;
    int places = 1;
    bool hints = false;
};

/** Recursive chunk tree over [lo, hi) point indices; leaf emits a strand
 * via @p leaf(lo, hi). @p top_hints attaches place hints to the top-level
 * 4-way split (used for the initial full-array passes). */
template <typename Leaf>
void
chunkTreeDag(HullDagCtx &c, int64_t lo, int64_t hi, const Leaf &leaf,
             bool top_hints)
{
    const HullParams &p = *c.p;
    if (hi - lo <= p.base) {
        leaf(lo, hi);
        return;
    }
    if (top_hints && c.places > 1) {
        for (int ch = 0; ch < 4; ++ch) {
            const int64_t a = lo + (hi - lo) * ch / 4;
            const int64_t b2 = lo + (hi - lo) * (ch + 1) / 4;
            c.b.spawn(chunkPlace(c.hints, ch, 4, c.places));
            chunkTreeDag(c, a, b2, leaf, false);
            c.b.end();
        }
        c.b.sync();
        return;
    }
    const int64_t mid = lo + (hi - lo) / 2;
    c.b.spawn(); // inherit
    chunkTreeDag(c, lo, mid, leaf, false);
    c.b.end();
    c.b.spawn(); // called branch: own frame, own sync scope
    chunkTreeDag(c, mid, hi, leaf, false);
    c.b.end();
    c.b.sync();
}

/** Reduce pass over points [lo, hi): read-only scan. */
void
reducePassDag(HullDagCtx &c, int64_t lo, int64_t hi, bool top_hints)
{
    chunkTreeDag(
        c, lo, hi,
        [&](int64_t a, int64_t b) {
            c.b.strand(kHullReduceCyclesPerPoint
                           * static_cast<double>(b - a),
                       {{c.pts, static_cast<uint64_t>(a) * 16,
                         static_cast<uint64_t>(b - a) * 16}});
        },
        top_hints);
}

/** Partition (pack) over [lo, hi): flags + prefix + scatter, modeled as
 * three passes (the prefix-sum propagations the paper calls out as the
 * locality-poor phase of hull1). */
void
packPassDag(HullDagCtx &c, int64_t lo, int64_t hi, bool top_hints)
{
    // Pass 1: compute flags (read pts, write aux).
    chunkTreeDag(
        c, lo, hi,
        [&](int64_t a, int64_t b) {
            c.b.strand(kHullPackCyclesPerPoint
                           * static_cast<double>(b - a),
                       {{c.pts, static_cast<uint64_t>(a) * 16,
                         static_cast<uint64_t>(b - a) * 16},
                        {c.aux, static_cast<uint64_t>(a) * 8,
                         static_cast<uint64_t>(b - a) * 8}});
        },
        top_hints);
    // Pass 2: prefix sum over aux (up + down sweep; rw).
    for (int pass = 0; pass < 2; ++pass) {
        chunkTreeDag(
            c, lo, hi,
            [&](int64_t a, int64_t b) {
                c.b.strand(3.0 * static_cast<double>(b - a),
                           {{c.aux, static_cast<uint64_t>(a) * 8,
                             static_cast<uint64_t>(b - a) * 8}});
            },
            top_hints);
    }
    // Pass 3: scatter (read pts + aux, write pts2).
    chunkTreeDag(
        c, lo, hi,
        [&](int64_t a, int64_t b) {
            c.b.strand(kHullPackCyclesPerPoint
                           * static_cast<double>(b - a),
                       {{c.pts, static_cast<uint64_t>(a) * 16,
                         static_cast<uint64_t>(b - a) * 16},
                        {c.aux, static_cast<uint64_t>(a) * 8,
                         static_cast<uint64_t>(b - a) * 8},
                        {c.pts2, static_cast<uint64_t>(a) * 16,
                         static_cast<uint64_t>(b - a) * 16}});
        },
        top_hints);
}

/** Recursive segment elimination. @p m points remain in [lo, lo+m). */
void
segmentDag(HullDagCtx &c, int64_t lo, int64_t m)
{
    const HullParams &p = *c.p;
    if (m <= p.base) {
        c.b.strand(8.0 * static_cast<double>(m),
                   {{c.pts2, static_cast<uint64_t>(lo) * 16,
                     static_cast<uint64_t>(m) * 16}});
        return;
    }
    // Farthest-point reduce + partition of the surviving range.
    reducePassDag(c, lo, lo + m, false);
    packPassDag(c, lo, lo + m, false);
    // Deterministic stand-in for the data-dependent elimination: points
    // inside the circle vanish fast; points on it survive.
    const double keep = p.onSphere ? 0.9 : 0.1;
    const int64_t child = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(m) * keep / 2.0));
    // The pack phases keep each segment contiguous in index space, so a
    // segment's data has a well-defined home; with hints on, earmark the
    // segment frame for the place owning its range midpoint (co-locate
    // computation with data, Section III).
    auto seg_place = [&](int64_t seg_lo, int64_t seg_m) {
        if (!c.hints || c.places <= 1)
            return kAnyPlace;
        return static_cast<Place>((seg_lo + seg_m / 2) * c.places
                                  / c.p->n);
    };
    c.b.spawn(seg_place(lo, child));
    segmentDag(c, lo, child);
    c.b.end();
    c.b.spawn(seg_place(lo + m - child, child));
    segmentDag(c, lo + m - child, child);
    c.b.end();
    c.b.sync();
}

} // namespace

std::vector<Point>
hullMakeInput(const HullParams &p, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Point> pts;
    pts.reserve(static_cast<std::size_t>(p.n));
    for (int64_t i = 0; i < p.n; ++i) {
        const double theta = 2.0 * M_PI * rng.nextDouble();
        const double r =
            p.onSphere ? 1.0 : std::sqrt(rng.nextDouble());
        pts.push_back(Point{r * std::cos(theta), r * std::sin(theta)});
    }
    return pts;
}

std::vector<Point>
hullSerial(const std::vector<Point> &pts)
{
    NUMAWS_ASSERT(pts.size() >= 2);
    std::size_t lo = 0, hi = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (pts[i].x < pts[lo].x
            || (pts[i].x == pts[lo].x && pts[i].y < pts[lo].y))
            lo = i;
        if (pts[i].x > pts[hi].x
            || (pts[i].x == pts[hi].x && pts[i].y > pts[hi].y))
            hi = i;
    }
    const Point a = pts[lo];
    const Point b = pts[hi];
    std::vector<Point> upper, lower;
    for (const Point &p : pts) {
        if (cross(a, b, p) > 0.0)
            upper.push_back(p);
        else if (cross(b, a, p) > 0.0)
            lower.push_back(p);
    }
    std::vector<Point> out;
    out.push_back(a);
    hullRecSerial(upper, a, b, out);
    out.push_back(b);
    hullRecSerial(lower, b, a, out);
    return out;
}

std::vector<Point>
hullParallel(Runtime &rt, const std::vector<Point> &pts,
             const HullParams &p, bool hints)
{
    (void)hints; // hint placement is positional; see hullDag for the model
    std::vector<Point> out;
    rt.run([&] {
        const std::size_t lo = argmaxPar(
            pts, p.base, [](const Point &q) { return -q.x; });
        const std::size_t hi = argmaxPar(
            pts, p.base, [](const Point &q) { return q.x; });
        const Point a = pts[lo];
        const Point b = pts[hi];
        std::vector<Point> upper, lower;
        {
            TaskGroup tg;
            tg.spawn([&] {
                upper = filterPar(pts, p.base, [&](const Point &q) {
                    return cross(a, b, q) > 0.0;
                });
            });
            lower = filterPar(pts, p.base, [&](const Point &q) {
                return cross(b, a, q) > 0.0;
            });
            tg.sync();
        }
        std::vector<Point> up_out, lo_out;
        {
            TaskGroup tg;
            tg.spawn([&] { hullRecParallel(upper, a, b, up_out, p.base); });
            hullRecParallel(lower, b, a, lo_out, p.base);
            tg.sync();
        }
        out.push_back(a);
        out.insert(out.end(), up_out.begin(), up_out.end());
        out.push_back(b);
        out.insert(out.end(), lo_out.begin(), lo_out.end());
    });
    return out;
}

sim::ComputationDag
hullDag(const HullParams &p, int places, Placement placement, bool hints)
{
    HullDagCtx c;
    c.p = &p;
    c.places = places;
    c.hints = hints;
    const uint64_t pt_bytes = static_cast<uint64_t>(p.n) * 16;
    c.pts = c.b.region("points", pt_bytes, regionPolicy(placement));
    c.pts2 = c.b.region("packed", pt_bytes, regionPolicy(placement));
    c.aux = c.b.region("aux", static_cast<uint64_t>(p.n) * 8,
                       regionPolicy(placement));

    c.b.beginRoot();
    // Initial min/max reduce and full-array partition (hinted: the only
    // phase with a stable data decomposition).
    reducePassDag(c, 0, p.n, true);
    packPassDag(c, 0, p.n, true);
    // Two sides of the initial line, each keeping ~half the points, then
    // recursive triangle elimination.
    const int64_t half = p.n / 2;
    c.b.spawn(kAnyPlace);
    segmentDag(c, 0, half);
    c.b.end();
    c.b.spawn(kAnyPlace);
    segmentDag(c, half, p.n - half);
    c.b.end();
    c.b.sync();
    c.b.end();
    return c.b.finish();
}

} // namespace numaws::workloads
