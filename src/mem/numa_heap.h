/**
 * @file
 * Per-worker NUMA heap for user data — `TaskFramePool`'s design
 * (size-classed slabs, owner-only LIFO free list + bump pointer, lock-free
 * MPSC remote-free stack drained off the hot path) generalized from task
 * frames to arbitrary user allocations up to 32 KiB.
 *
 * The frame pool made *spawns* allocation-free and NUMA-local (PR 5); this
 * layer does the same for the *data* those tasks touch, which is what the
 * paper's locality argument is actually about: the occupancy+affinity
 * victim weighting can only steer steals toward data homes it can see.
 * Slabs are carved via `NumaArena::carveSlabOnSocket`, so every pooled
 * block's home is registered in the `PageMap`; allocations too big for the
 * size classes fall through to an arena-backed big-object path that is
 * registered the same way. The style follows dphim's
 * `util/override_new_delete.hpp` per-node pools, without hijacking global
 * `operator new` — callers opt in through `numa::allocate` /
 * `NumaAllocator<T>` / `PartedVec<T>`.
 *
 * Concurrency contract (identical to the frame pool's):
 *  - allocate / freeLocal / drainRemote: owner thread only;
 *  - freeRemote: any thread (Treiber push, release-CAS);
 *  - the destructor runs after workers join, so it may drain and release
 *    without synchronization.
 */
#ifndef NUMAWS_MEM_NUMA_HEAP_H
#define NUMAWS_MEM_NUMA_HEAP_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/numa_arena.h"
#include "support/cache_aligned.h"
#include "support/panic.h"
#include "topology/place.h"

namespace numaws {

class NumaHeap;

/**
 * How `numa::allocate` (and everything built on it: `NumaAllocator`,
 * `PartedVec`, the workload data buffers) is backed. Engine-side like
 * `TaskPoolPolicy`: the simulator has no allocator, and no scheduling
 * decision may depend on this knob, so it lives in `RuntimeOptions`
 * outside `SchedPolicy`.
 */
enum class DataHeapPolicy : uint8_t {
    /** Plain process heap, no PageMap registration — today's behavior,
     * kept as the ablation baseline. */
    Heap,
    /** Per-worker NUMA heaps + registered arena blocks (default). */
    Pooled,
};

inline const char *
dataHeapPolicyName(DataHeapPolicy p)
{
    return p == DataHeapPolicy::Heap ? "heap" : "pooled";
}

/**
 * Header preceding every block handed out by the data plane, pooled or
 * not. 64 bytes are reserved so payloads are cache-line aligned and
 * never false-share with the header's remote-free link.
 *
 * `sizeClass` doubles as the routing tag for `numa::deallocate`: a real
 * class index for pooled blocks, `kClassArena` for registered big/
 * partitioned blocks (freed through `arena`), `kClassPlain` for global-
 * heap blocks (freed through `std::free`).
 */
struct DataBlockHeader
{
    DataBlockHeader *next = nullptr; ///< free-list / remote-stack link
    NumaHeap *ownerHeap = nullptr;   ///< pooled blocks: heap to return to
    NumaArena *arena = nullptr;      ///< kClassArena blocks: freeing arena
    uint32_t sizeClass = 0;
    uint32_t state = 0; ///< kBlockLive / kBlockFree (always checked)
};

/**
 * One worker's size-classed heap. Payload classes are powers of two from
 * 64 B to 32 KiB; each block is header + payload, carved from 256 KiB
 * slabs homed on the worker's socket and registered in the PageMap.
 */
class NumaHeap
{
  public:
    /** Reserved bytes before each payload (holds DataBlockHeader). */
    static constexpr std::size_t kHeaderBytes = 64;
    /** Payload alignment guaranteed by every data-plane path. */
    static constexpr std::size_t kDataAlign = 64;
    static constexpr int kNumClasses = 10;
    /** Payload capacity per class: 64 << class. */
    static constexpr std::size_t kClassPayload[kNumClasses] = {
        64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768};
    static constexpr std::size_t kMaxPooledBytes = 32768;
    static constexpr std::size_t kSlabBytes = 256 * 1024;

    /** Block states — checked on every free, pooled or not, so a double
     * free or a stray pointer panics instead of corrupting a free list
     * (same contract as the frame pool's kFrameLive/kFrameFree). */
    static constexpr uint32_t kBlockLive = 0x444c; // "DL"
    static constexpr uint32_t kBlockFree = 0x4446; // "DF"
    /** sizeClass tags for blocks that bypass the pooled classes. */
    static constexpr uint32_t kClassArena = 0xfffffffe;
    static constexpr uint32_t kClassPlain = 0xffffffff;

    /**
     * @p arena == nullptr disables the heap (DataHeapPolicy::Heap):
     * allocate() then always returns nullptr and callers fall through
     * to the plain path.
     */
    NumaHeap(int owner_worker, int socket, NumaArena *arena)
        : _ownerWorker(owner_worker), _socket(socket), _arena(arena)
    {
        for (int c = 0; c < kNumClasses; ++c)
            _freeHead[c] = nullptr;
    }

    /** Runs after workers join: drains stragglers, returns every slab
     * to the arena (which unregisters it from the PageMap). */
    ~NumaHeap();

    NumaHeap(const NumaHeap &) = delete;
    NumaHeap &operator=(const NumaHeap &) = delete;

    /** Smallest class whose payload holds @p bytes; -1 if too big. */
    static int
    classForBytes(std::size_t bytes)
    {
        if (bytes > kMaxPooledBytes)
            return -1;
        if (bytes <= kClassPayload[0])
            return 0;
        // Index of the smallest power-of-two payload >= bytes
        // (class 0 holds 2^6 bytes).
        return 63 - __builtin_clzll(bytes - 1) - 5;
    }

    static DataBlockHeader *
    headerOf(void *payload)
    {
        return reinterpret_cast<DataBlockHeader *>(
            static_cast<char *>(payload) - kHeaderBytes);
    }

    static void *
    payloadOf(DataBlockHeader *h)
    {
        return reinterpret_cast<char *>(h) + kHeaderBytes;
    }

    /**
     * Owner-only fast path: pop the class free list, else bump the
     * current slab. Returns nullptr when disabled or @p bytes exceeds
     * the largest class — the caller (numa::allocate) falls through to
     * the arena big-object path.
     */
    void *
    allocate(std::size_t bytes)
    {
        const int cls = classForBytes(bytes);
        if (_arena == nullptr || cls < 0)
            return nullptr;
        DataBlockHeader *h = _freeHead[cls];
        if (h != nullptr) {
            NUMAWS_ASSERT(h->state == kBlockFree);
            _freeHead[cls] = h->next;
            ++_blocksRecycled;
        } else {
            h = allocateSlow(cls);
            if (h == nullptr)
                return nullptr; // carve failed; caller falls through
        }
        h->state = kBlockLive;
        ++_blocksAllocated;
        _bytesPooled += bytes;
        return payloadOf(h);
    }

    /** Owner-only free. Panics on double free. */
    void
    freeLocal(DataBlockHeader *h)
    {
        NUMAWS_ASSERT(h->state == kBlockLive);
        NUMAWS_ASSERT(h->ownerHeap == this);
        h->state = kBlockFree;
        const int cls = static_cast<int>(h->sizeClass);
        h->next = _freeHead[cls];
        _freeHead[cls] = h;
        ++_localFrees;
    }

    /**
     * Any-thread free: push onto the owner's remote stack (Treiber,
     * release-CAS). The owner relinks the batch into its class lists
     * on its next drainRemote() — off the allocation fast path.
     */
    void
    freeRemote(DataBlockHeader *h)
    {
        NUMAWS_ASSERT(h->state == kBlockLive);
        NUMAWS_ASSERT(h->ownerHeap == this);
        h->state = kBlockFree;
        DataBlockHeader *head = _remoteHead.load(std::memory_order_relaxed);
        do {
            h->next = head;
        } while (!_remoteHead.compare_exchange_weak(
            head, h, std::memory_order_release, std::memory_order_relaxed));
        _remoteFrees.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Owner-only: reclaim remotely freed blocks. The empty check is a
     * relaxed load — stealing-path callers pay one uncontended load
     * when nothing is parked. Returns the number reclaimed.
     */
    std::size_t
    drainRemote()
    {
        if (_remoteHead.load(std::memory_order_relaxed) == nullptr)
            return 0;
        return drainRemoteSlow();
    }

    /** @name Counters (owner-read except remoteFrees; fold via Worker) */
    /// @{
    uint64_t bytesPooled() const { return _bytesPooled; }
    uint64_t blocksRecycled() const { return _blocksRecycled; }
    uint64_t localFrees() const { return _localFrees; }
    uint64_t
    remoteFrees() const
    {
        return _remoteFrees.load(std::memory_order_relaxed);
    }
    uint64_t slabBytes() const { return _slabBytes; }
    uint64_t slabsCarved() const { return _slabs.size(); }
    /** Carve attempts that failed and degraded this allocation to a
     * plain-heap block (graceful OOM; see NumaArena::carveSlab). */
    uint64_t slabFallbacks() const { return _slabFallbacks; }

    /** Blocks live right now = allocations minus frees since
     * construction or the last resetCounters() (exact when quiescent;
     * a nonzero value at quiescence is a leak). */
    int64_t
    outstanding() const
    {
        return static_cast<int64_t>(_blocksAllocated)
               - static_cast<int64_t>(_localFrees)
               - static_cast<int64_t>(remoteFrees());
    }

    void
    resetCounters()
    {
        _bytesPooled = 0;
        _blocksAllocated = 0;
        _blocksRecycled = 0;
        _localFrees = 0;
        _slabFallbacks = 0;
        _remoteFrees.store(0, std::memory_order_relaxed);
        // Slab gauges deliberately survive: carved memory does not
        // un-carve on a stats reset.
    }
    /// @}

    int ownerWorker() const { return _ownerWorker; }
    int socket() const { return _socket; }
    bool enabled() const { return _arena != nullptr; }

  private:
    DataBlockHeader *allocateSlow(int cls);
    std::size_t drainRemoteSlow();

    const int _ownerWorker;
    const int _socket;
    NumaArena *const _arena;

    DataBlockHeader *_freeHead[kNumClasses];
    char *_bumpPtr = nullptr;
    char *_bumpEnd = nullptr;
    std::vector<void *> _slabs;

    uint64_t _bytesPooled = 0;
    uint64_t _blocksAllocated = 0;
    uint64_t _blocksRecycled = 0;
    uint64_t _localFrees = 0;
    uint64_t _slabBytes = 0;
    uint64_t _slabFallbacks = 0;
    /** Atomic: bumped by freeRemote callers on any thread. */
    std::atomic<uint64_t> _remoteFrees{0};

    /** Own cache line: thieves CAS here while the owner allocates. */
    alignas(kCacheLineBytes) std::atomic<DataBlockHeader *> _remoteHead{
        nullptr};
};

/**
 * Free-function allocation API over the data plane. Routing:
 *  - on a worker of a Pooled runtime, sizes up to 32 KiB with no (or the
 *    worker's own) place come from the worker's NumaHeap — the fast path;
 *  - otherwise, under a Pooled runtime, blocks come from the runtime's
 *    arena homed on the requested socket and registered in the PageMap;
 *  - with no runtime alive or under DataHeapPolicy::Heap, blocks come
 *    from the plain process heap, unregistered.
 * `deallocate` routes by header tag, so any block may be freed from any
 * thread — but pooled/arena blocks must be freed before their runtime is
 * destroyed.
 */
namespace numa {

/** Per-thread data-plane binding (installed by worker mainLoop). */
struct ThreadBinding
{
    NumaHeap *heap = nullptr;
    NumaArena *arena = nullptr;
    Place place = kAnyPlace;
    bool pooled = false;
};

/** Install/remove the calling thread's binding (runtime-internal). */
void bindThread(const ThreadBinding &b);
void unbindThread();

/** Process-wide fallback binding for non-worker threads, owned by the
 * Runtime (last constructed wins; cleared by its destructor). */
void setAmbient(NumaArena *arena, bool pooled, const void *owner);
void clearAmbient(const void *owner);

/** Allocate @p bytes homed on @p place (kAnyPlace = caller's socket). */
void *allocate(std::size_t bytes, Place place = kAnyPlace);

/** Registered big-block path from an explicit arena (PartedVec shards,
 * workload buffers — unambiguous when several runtimes exist). */
void *allocateOn(NumaArena &arena, std::size_t bytes, int socket);

/** Registered block with pages split across sockets in contiguous
 * chunks (NumaArena::allocPartitioned under a data-plane header). */
void *allocatePartitioned(NumaArena &arena, std::size_t bytes, int chunks);

/** Plain-heap path with a data-plane header (DataHeapPolicy::Heap). */
void *allocatePlain(std::size_t bytes);

/** Free any block from any data-plane path; nullptr is a no-op. */
void deallocate(void *ptr);

} // namespace numa

/**
 * Standard-library allocator over numa::allocate, so `std::vector<T,
 * NumaAllocator<T>>` lands on a chosen socket. Place-holding and
 * stateful: copies (and container copy/rebind) propagate the place.
 */
template <typename T>
class NumaAllocator
{
  public:
    using value_type = T;
    static_assert(alignof(T) <= NumaHeap::kDataAlign,
                  "data-plane blocks are 64-byte aligned");

    NumaAllocator() = default;
    explicit NumaAllocator(Place place) : _place(place) {}
    template <typename U>
    NumaAllocator(const NumaAllocator<U> &other) : _place(other.place())
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(numa::allocate(n * sizeof(T), _place));
    }

    void deallocate(T *p, std::size_t) { numa::deallocate(p); }

    Place place() const { return _place; }

  private:
    Place _place = kAnyPlace;
};

template <typename T, typename U>
bool
operator==(const NumaAllocator<T> &a, const NumaAllocator<U> &b)
{
    return a.place() == b.place();
}

template <typename T, typename U>
bool
operator!=(const NumaAllocator<T> &a, const NumaAllocator<U> &b)
{
    return !(a == b);
}

} // namespace numaws

#endif // NUMAWS_MEM_NUMA_HEAP_H
