#include "mem/numa_heap.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace numaws {

NumaHeap::~NumaHeap()
{
    // Workers have joined by the time a heap destructs (the Runtime's
    // arena and page map are declared before the worker array), so the
    // remote stack is quiescent: drain it for the outstanding() book,
    // then return every slab wholesale — individual block free lists
    // need no walking.
    drainRemote();
    for (void *slab : _slabs)
        _arena->free(slab);
}

DataBlockHeader *
NumaHeap::allocateSlow(int cls)
{
    // Order mirrors the frame pool: reclaim remote frees first (reuse
    // beats carving), then bump the current slab, then carve.
    if (drainRemote() > 0 && _freeHead[cls] != nullptr) {
        DataBlockHeader *h = _freeHead[cls];
        NUMAWS_ASSERT(h->state == kBlockFree);
        _freeHead[cls] = h->next;
        ++_blocksRecycled;
        return h;
    }
    const std::size_t block = kHeaderBytes + kClassPayload[cls];
    if (_bumpPtr == nullptr
        || static_cast<std::size_t>(_bumpEnd - _bumpPtr) < block) {
        void *slab = _arena->carveSlabOnSocket(kSlabBytes, _socket);
        if (slab == nullptr) {
            // Graceful degradation: numa::allocate treats a nullptr
            // from the heap as "route this block elsewhere", so a
            // failed carve widens the existing fallback path.
            ++_slabFallbacks;
            return nullptr;
        }
        // First touch by the owning thread — on a real NUMA kernel this
        // homes the pages exactly where carveSlabOnSocket registered
        // them.
        std::memset(slab, 0, kSlabBytes);
        _slabs.push_back(slab);
        _slabBytes += kSlabBytes;
        _bumpPtr = static_cast<char *>(slab);
        _bumpEnd = _bumpPtr + kSlabBytes;
    }
    auto *h = reinterpret_cast<DataBlockHeader *>(_bumpPtr);
    _bumpPtr += block;
    h->next = nullptr;
    h->ownerHeap = this;
    h->arena = nullptr;
    h->sizeClass = static_cast<uint32_t>(cls);
    h->state = kBlockFree; // allocate() flips to live
    return h;
}

std::size_t
NumaHeap::drainRemoteSlow()
{
    DataBlockHeader *h =
        _remoteHead.exchange(nullptr, std::memory_order_acquire);
    std::size_t n = 0;
    while (h != nullptr) {
        DataBlockHeader *next = h->next;
        NUMAWS_ASSERT(h->state == kBlockFree);
        const int cls = static_cast<int>(h->sizeClass);
        h->next = _freeHead[cls];
        _freeHead[cls] = h;
        h = next;
        ++n;
    }
    return n;
}

namespace numa {
namespace {

thread_local ThreadBinding tlsBinding;

/** Process-wide fallback for non-worker threads. A mutex is fine: the
 * ambient path is already the slow path (registered arena alloc under
 * the arena's own locks). */
struct Ambient
{
    std::mutex mutex;
    NumaArena *arena = nullptr;
    bool pooled = false;
    const void *owner = nullptr;
};

Ambient &
ambient()
{
    static Ambient a;
    return a;
}

ThreadBinding
currentBinding()
{
    if (tlsBinding.arena != nullptr)
        return tlsBinding;
    Ambient &a = ambient();
    std::lock_guard<std::mutex> g(a.mutex);
    ThreadBinding b;
    b.arena = a.arena;
    b.pooled = a.pooled;
    return b;
}

void
stampHeader(DataBlockHeader *h, uint32_t cls, NumaArena *arena)
{
    h->next = nullptr;
    h->ownerHeap = nullptr;
    h->arena = arena;
    h->sizeClass = cls;
    h->state = NumaHeap::kBlockLive;
}

} // namespace

void
bindThread(const ThreadBinding &b)
{
    tlsBinding = b;
}

void
unbindThread()
{
    tlsBinding = ThreadBinding{};
}

void
setAmbient(NumaArena *arena, bool pooled, const void *owner)
{
    Ambient &a = ambient();
    std::lock_guard<std::mutex> g(a.mutex);
    a.arena = arena;
    a.pooled = pooled;
    a.owner = owner;
}

void
clearAmbient(const void *owner)
{
    Ambient &a = ambient();
    std::lock_guard<std::mutex> g(a.mutex);
    if (a.owner == owner) {
        a.arena = nullptr;
        a.pooled = false;
        a.owner = nullptr;
    }
}

void *
allocatePlain(std::size_t bytes)
{
    const std::size_t total =
        (NumaHeap::kHeaderBytes + bytes + NumaHeap::kDataAlign - 1)
        / NumaHeap::kDataAlign * NumaHeap::kDataAlign;
    void *base = std::aligned_alloc(NumaHeap::kDataAlign, total);
    if (base == nullptr)
        NUMAWS_FATAL("numa::allocatePlain: out of memory (%zu bytes)",
                     total);
    stampHeader(static_cast<DataBlockHeader *>(base),
                NumaHeap::kClassPlain, nullptr);
    return NumaHeap::payloadOf(static_cast<DataBlockHeader *>(base));
}

void *
allocateOn(NumaArena &arena, std::size_t bytes, int socket)
{
    const int sockets = arena.pageMap().numSockets();
    if (socket < 0)
        socket = 0;
    if (socket >= sockets)
        socket = sockets - 1;
    void *base =
        arena.allocOnSocket(NumaHeap::kHeaderBytes + bytes, socket);
    if (base == nullptr)
        return allocatePlain(bytes); // graceful carve failure
    stampHeader(static_cast<DataBlockHeader *>(base),
                NumaHeap::kClassArena, &arena);
    return NumaHeap::payloadOf(static_cast<DataBlockHeader *>(base));
}

void *
allocatePartitioned(NumaArena &arena, std::size_t bytes, int chunks)
{
    void *base =
        arena.allocPartitioned(NumaHeap::kHeaderBytes + bytes, chunks);
    if (base == nullptr)
        return allocatePlain(bytes); // graceful carve failure
    stampHeader(static_cast<DataBlockHeader *>(base),
                NumaHeap::kClassArena, &arena);
    return NumaHeap::payloadOf(static_cast<DataBlockHeader *>(base));
}

void *
allocate(std::size_t bytes, Place place)
{
    if (bytes == 0)
        bytes = 1;
    const ThreadBinding b = currentBinding();
    if (!b.pooled || b.arena == nullptr)
        return allocatePlain(bytes);
    // Worker fast path: the local heap serves any placeless request and
    // requests for the worker's own socket.
    if (b.heap != nullptr
        && (!isConcretePlace(place) || place == b.place)) {
        if (void *p = b.heap->allocate(bytes))
            return p;
    }
    // Cross-socket or oversized: registered arena block.
    const int socket = isConcretePlace(place)
                           ? place
                           : (isConcretePlace(b.place) ? b.place : 0);
    return allocateOn(*b.arena, bytes, socket);
}

void
deallocate(void *ptr)
{
    if (ptr == nullptr)
        return;
    DataBlockHeader *h = NumaHeap::headerOf(ptr);
    switch (h->sizeClass) {
      case NumaHeap::kClassPlain:
        NUMAWS_ASSERT(h->state == NumaHeap::kBlockLive);
        h->state = NumaHeap::kBlockFree;
        std::free(h);
        return;
      case NumaHeap::kClassArena:
        NUMAWS_ASSERT(h->state == NumaHeap::kBlockLive);
        h->state = NumaHeap::kBlockFree;
        h->arena->free(h);
        return;
      default: {
        NumaHeap *owner = h->ownerHeap;
        NUMAWS_ASSERT(owner != nullptr);
        // freeLocal/freeRemote re-check the live state themselves.
        if (owner == tlsBinding.heap)
            owner->freeLocal(h);
        else
            owner->freeRemote(h);
        return;
      }
    }
}

} // namespace numa

} // namespace numaws
