/**
 * @file
 * NUMA-aware allocation API (the paper's "library functions that allow the
 * application code to [co-locate data] easily at memory allocation time").
 *
 * Allocations come from the host heap; what makes them "NUMA" is the
 * registration with a PageMap, which the memory model treats as ground
 * truth for page homes. On a real NUMA kernel the same API would be backed
 * by mmap + mbind — the call sites would not change.
 */
#ifndef NUMAWS_MEM_NUMA_ARENA_H
#define NUMAWS_MEM_NUMA_ARENA_H

#include <cstddef>
#include <memory>

#include "mem/page_map.h"
#include "topology/place.h"

namespace numaws {

/**
 * Allocator handing out page-aligned blocks registered with home sockets.
 */
class NumaArena
{
  public:
    explicit NumaArena(PageMap &page_map) : _pageMap(page_map) {}

    /** Allocate @p bytes homed entirely on @p socket. */
    void *allocOnSocket(std::size_t bytes, int socket);

    /** Allocate @p bytes with pages interleaved across all sockets. */
    void *allocInterleaved(std::size_t bytes);

    /**
     * Allocate @p bytes split into contiguous chunks, chunk i homed on
     * socket i*sockets/chunks — the partitioning the paper's mergesort
     * uses for the quarters of `in` and `tmp`.
     */
    void *allocPartitioned(std::size_t bytes, int chunks);

    /** Release a block obtained from any alloc* call. */
    void free(void *ptr);

    /**
     * Re-home an existing block (applications repartition between phases).
     */
    void rebindOnSocket(void *ptr, std::size_t bytes, int socket);
    void rebindPartitioned(void *ptr, std::size_t bytes, int chunks);

    /** @name Slab carve-out (runtime-internal frame pools)
     * Raw page-aligned slabs for allocators that manage their own
     * interior structure (the per-worker task-frame pools). The static
     * form bypasses PageMap registration — the slab holds runtime
     * metadata, not application data, and the caller first-touches it
     * on the thread that will own it, which on a real NUMA kernel homes
     * the pages on that thread's socket (the mmap + first-touch
     * analogue of allocOnSocket's mmap + mbind; Wittmann & Hager's
     * ccNUMA result that first-touch placement of runtime metadata
     * dominates task-parallel locality is exactly this contract). The
     * instance form additionally registers the range with the PageMap
     * so the memory model and affinity machinery see the homes; release
     * it with free(). */
    /// @{
    /** Page-aligned, unregistered slab of at least @p bytes, or nullptr
     * when the host allocation fails — callers (the frame pool, the
     * data heap) degrade to their plain-heap fallback and count a
     * slabFallback instead of aborting a serving runtime mid-flight. */
    static void *carveSlab(std::size_t bytes);
    /** Release a slab obtained from carveSlab (and only from it). */
    static void releaseSlab(void *ptr);
    /** Registered variant: slab homed on @p socket in the PageMap;
     * nullptr on failure like carveSlab. */
    void *carveSlabOnSocket(std::size_t bytes, int socket);
    /** Test hook: make the next @p n carve attempts (static or
     * instance, process-wide) fail as if the host heap were exhausted.
     * Exercises the fallback chain without actually running the
     * machine out of memory. */
    static void failNextCarvesForTesting(int n);
    /// @}

    PageMap &pageMap() { return _pageMap; }

  private:
    void *allocRaw(std::size_t bytes);

    PageMap &_pageMap;
};

} // namespace numaws

#endif // NUMAWS_MEM_NUMA_ARENA_H
