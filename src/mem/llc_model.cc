#include "mem/llc_model.h"

#include "support/panic.h"

namespace numaws {

namespace {

std::size_t
roundDownPow2(std::size_t x)
{
    std::size_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}

} // namespace

LlcModel::LlcModel(uint64_t capacity_bytes, uint64_t granule_bytes, int ways)
    : _granuleBytes(granule_bytes), _ways(ways)
{
    NUMAWS_ASSERT(capacity_bytes >= granule_bytes);
    NUMAWS_ASSERT(ways >= 1);
    const std::size_t entries = capacity_bytes / granule_bytes;
    _numSets = roundDownPow2(
        std::max<std::size_t>(1, entries / static_cast<std::size_t>(ways)));
    _ways_storage.assign(_numSets * static_cast<std::size_t>(_ways), Way{});
}

std::size_t
LlcModel::setIndex(uint64_t granule) const
{
    // Multiplicative hash spreads strided accesses across sets.
    return static_cast<std::size_t>((granule * 0x9e3779b97f4a7c15ULL)
                                    >> 32)
           & (_numSets - 1);
}

bool
LlcModel::access(uint64_t addr)
{
    const uint64_t granule = addr / _granuleBytes;
    Way *set = &_ways_storage[setIndex(granule)
                              * static_cast<std::size_t>(_ways)];
    ++_clock;
    int victim = 0;
    for (int w = 0; w < _ways; ++w) {
        if (set[w].tag == granule) {
            set[w].lastUse = _clock;
            ++_hits;
            return true;
        }
        if (set[w].lastUse < set[victim].lastUse)
            victim = w;
    }
    set[victim].tag = granule;
    set[victim].lastUse = _clock;
    ++_misses;
    return false;
}

bool
LlcModel::contains(uint64_t addr) const
{
    const uint64_t granule = addr / _granuleBytes;
    const Way *set = &_ways_storage[setIndex(granule)
                                    * static_cast<std::size_t>(_ways)];
    for (int w = 0; w < _ways; ++w)
        if (set[w].tag == granule)
            return true;
    return false;
}

void
LlcModel::clear()
{
    for (auto &w : _ways_storage)
        w = Way{};
    _clock = 0;
    _hits = 0;
    _misses = 0;
}

} // namespace numaws
