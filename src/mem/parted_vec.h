/**
 * @file
 * Socket-sharded vector over the NUMA data plane, in the style of
 * dphim's `util/parted_vec.hpp`: one contiguous shard per place, each
 * allocated on its socket through `numa::allocateOn` (so its home is
 * registered in the runtime's `PageMap`), plus a `forEachShard` that
 * spawns one data-annotated task per shard — the spawn-time placement
 * hint then lands each task on its shard's home deque without the
 * caller ever naming a place. This is the top of the data-plane stack,
 * so (unlike the rest of `src/mem`) it knows about the runtime.
 */
#ifndef NUMAWS_MEM_PARTED_VEC_H
#define NUMAWS_MEM_PARTED_VEC_H

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "mem/numa_heap.h"
#include "runtime/runtime.h"

namespace numaws {

/**
 * Fixed-size vector of @p T sharded across a runtime's places.
 *
 * Shard boundaries fall on multiples of @p granule elements (pass a row
 * length to keep rows intact), so `ptr(i)` stays valid through the end
 * of i's granule run — but NOT across shard boundaries: shards are
 * separate allocations. Element homes: shard s lives on socket s.
 *
 * Under `DataHeapPolicy::Heap` the shards come from the plain process
 * heap, unregistered — sharding math is identical, placement is not
 * (the ablation baseline). Must not outlive the runtime it was built
 * against.
 */
template <typename T>
class PartedVec
{
  public:
    static_assert(alignof(T) <= NumaHeap::kDataAlign,
                  "data-plane blocks are 64-byte aligned");

    PartedVec(Runtime &rt, std::size_t n, std::size_t granule = 1)
        : _size(n)
    {
        const auto shards = static_cast<std::size_t>(rt.numPlaces());
        const std::size_t g = granule == 0 ? 1 : granule;
        const std::size_t units = (n + g - 1) / g;
        _stride = std::max<std::size_t>(1, (units + shards - 1) / shards) * g;
        const bool pooled =
            rt.options().dataHeap == DataHeapPolicy::Pooled;
        _shards.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s) {
            const std::size_t begin = std::min(n, s * _stride);
            const std::size_t count = std::min(n - begin, _stride);
            Shard shard;
            shard.count = count;
            if (count > 0) {
                void *raw =
                    pooled ? numa::allocateOn(rt.arena(), count * sizeof(T),
                                              static_cast<int>(s))
                           : numa::allocatePlain(count * sizeof(T));
                shard.data = static_cast<T *>(raw);
                std::uninitialized_value_construct_n(shard.data, count);
            }
            _shards.push_back(shard);
        }
    }

    ~PartedVec()
    {
        for (Shard &s : _shards) {
            if (s.data == nullptr)
                continue;
            std::destroy_n(s.data, s.count);
            numa::deallocate(s.data);
        }
    }

    PartedVec(const PartedVec &) = delete;
    PartedVec &operator=(const PartedVec &) = delete;

    std::size_t size() const { return _size; }
    int numShards() const { return static_cast<int>(_shards.size()); }
    /** Elements per shard (last shard may be short). */
    std::size_t shardStride() const { return _stride; }

    int
    shardFor(std::size_t i) const
    {
        return static_cast<int>(i / _stride);
    }
    /** Home socket of element i: shard s is allocated on socket s. */
    int homeOf(std::size_t i) const { return shardFor(i); }

    T *shardData(int s) { return _shards[s].data; }
    const T *shardData(int s) const { return _shards[s].data; }
    std::size_t shardSize(int s) const { return _shards[s].count; }
    std::size_t
    shardBegin(int s) const
    {
        return static_cast<std::size_t>(s) * _stride;
    }

    T &
    operator[](std::size_t i)
    {
        return _shards[i / _stride].data[i % _stride];
    }
    const T &
    operator[](std::size_t i) const
    {
        return _shards[i / _stride].data[i % _stride];
    }

    /** Pointer to element i, contiguous through the end of i's shard. */
    T *ptr(std::size_t i) { return _shards[i / _stride].data + i % _stride; }
    const T *
    ptr(std::size_t i) const
    {
        return _shards[i / _stride].data + i % _stride;
    }

    /**
     * Spawn `fn(shard, data, count)` once per nonempty shard and sync.
     * Each spawn carries its shard's data range, so the spawn-time
     * placement hint routes it to the shard's home-socket deque (and
     * the steal path sees the same range as an affinity mask). Must be
     * called from inside the runtime (a task body).
     */
    template <typename F>
    void
    forEachShard(F fn)
    {
        TaskGroup tg;
        for (int s = 0; s < numShards(); ++s) {
            T *data = _shards[static_cast<std::size_t>(s)].data;
            const std::size_t count =
                _shards[static_cast<std::size_t>(s)].count;
            if (count == 0)
                continue;
            tg.spawn([fn, s, data, count] { fn(s, data, count); },
                     kAnyPlace, data, count * sizeof(T));
        }
        tg.sync();
    }

  private:
    struct Shard
    {
        T *data = nullptr;
        std::size_t count = 0;
    };

    std::size_t _size;
    std::size_t _stride = 1;
    std::vector<Shard> _shards;
};

} // namespace numaws

#endif // NUMAWS_MEM_PARTED_VEC_H
