/**
 * @file
 * Shared last-level cache model, one instance per simulated socket.
 *
 * A set-associative tag array over fixed-size granules (default 4 KB — the
 * model tracks reuse at block granularity, not per 64-byte line, keeping
 * simulation cost proportional to data touched / 4 KB). Timestamp
 * pseudo-LRU replacement. This is deliberately simple: the paper's work
 * inflation stems from *where* lines are serviced, and capacity/reuse
 * behaviour at this granularity is sufficient to reproduce it.
 */
#ifndef NUMAWS_MEM_LLC_MODEL_H
#define NUMAWS_MEM_LLC_MODEL_H

#include <cstdint>
#include <vector>

namespace numaws {

/** Set-associative granule cache with LRU-by-timestamp replacement. */
class LlcModel
{
  public:
    /**
     * @param capacity_bytes total modeled capacity (e.g. 16 MB).
     * @param granule_bytes tracking granule (>= one page works well).
     * @param ways associativity.
     */
    LlcModel(uint64_t capacity_bytes, uint64_t granule_bytes = 4096,
             int ways = 8);

    /**
     * Access the granule containing @p addr.
     * @return true on hit; on miss the granule is installed, possibly
     *         evicting the set's LRU entry.
     */
    bool access(uint64_t addr);

    /** True if the granule is currently resident (no state change). */
    bool contains(uint64_t addr) const;

    /** Drop all contents (between benchmark repetitions). */
    void clear();

    uint64_t granuleBytes() const { return _granuleBytes; }
    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }

  private:
    struct Way
    {
        uint64_t tag = kInvalid;
        uint64_t lastUse = 0;
    };

    static constexpr uint64_t kInvalid = ~0ULL;

    std::size_t setIndex(uint64_t granule) const;

    uint64_t _granuleBytes;
    int _ways;
    std::size_t _numSets;
    std::vector<Way> _ways_storage;
    uint64_t _clock = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
};

} // namespace numaws

#endif // NUMAWS_MEM_LLC_MODEL_H
