#include "mem/numa_arena.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "support/panic.h"

namespace numaws {

namespace {

// Track allocation sizes so free() can unregister the exact range.
std::mutex sizesMutex;
std::map<void *, std::size_t> &
allocSizes()
{
    static std::map<void *, std::size_t> sizes;
    return sizes;
}

// failNextCarvesForTesting budget; 0 in production (one relaxed load
// on the already-slow carve path).
std::atomic<int> injectedCarveFailures{0};

bool
takeInjectedFailure()
{
    int n = injectedCarveFailures.load(std::memory_order_relaxed);
    while (n > 0) {
        if (injectedCarveFailures.compare_exchange_weak(
                n, n - 1, std::memory_order_relaxed,
                std::memory_order_relaxed))
            return true;
    }
    return false;
}

} // namespace

void
NumaArena::failNextCarvesForTesting(int n)
{
    injectedCarveFailures.store(n, std::memory_order_relaxed);
}

void *
NumaArena::allocRaw(std::size_t bytes)
{
    // carveSlab is the one raw page-allocation path; registration-
    // tracked blocks add the size bookkeeping free() relies on.
    const std::size_t rounded =
        (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
    void *p = carveSlab(rounded);
    if (p == nullptr)
        return nullptr;
    {
        std::lock_guard<std::mutex> g(sizesMutex);
        allocSizes()[p] = rounded;
    }
    return p;
}

void *
NumaArena::allocOnSocket(std::size_t bytes, int socket)
{
    void *p = allocRaw(bytes);
    if (p != nullptr)
        rebindOnSocket(p, bytes, socket);
    return p;
}

void *
NumaArena::allocInterleaved(std::size_t bytes)
{
    void *p = allocRaw(bytes);
    if (p != nullptr)
        _pageMap.registerRange(reinterpret_cast<uint64_t>(p), bytes,
                               PagePolicy::Interleaved);
    return p;
}

void *
NumaArena::allocPartitioned(std::size_t bytes, int chunks)
{
    void *p = allocRaw(bytes);
    if (p != nullptr)
        rebindPartitioned(p, bytes, chunks);
    return p;
}

void
NumaArena::rebindOnSocket(void *ptr, std::size_t bytes, int socket)
{
    _pageMap.registerRange(reinterpret_cast<uint64_t>(ptr), bytes,
                           PagePolicy::Single, socket);
}

void
NumaArena::rebindPartitioned(void *ptr, std::size_t bytes, int chunks)
{
    NUMAWS_ASSERT(chunks > 0);
    const int sockets = _pageMap.numSockets();
    const uint64_t base = reinterpret_cast<uint64_t>(ptr);
    const uint64_t chunk =
        (bytes / chunks + kPageBytes - 1) / kPageBytes * kPageBytes;
    uint64_t offset = 0;
    for (int c = 0; c < chunks && offset < bytes; ++c) {
        const uint64_t len = std::min<uint64_t>(chunk, bytes - offset);
        const int home = c * sockets / chunks;
        _pageMap.registerRange(base + offset, len, PagePolicy::Single, home);
        offset += len;
    }
}

void *
NumaArena::carveSlab(std::size_t bytes)
{
    NUMAWS_ASSERT(bytes > 0);
    if (takeInjectedFailure())
        return nullptr;
    const std::size_t rounded =
        (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
    // nullptr, not fatal: slab memory is an optimization (NUMA-homed
    // pooling), so exhaustion degrades to the callers' plain-heap
    // paths instead of killing a serving runtime.
    return std::aligned_alloc(kPageBytes, rounded);
}

void
NumaArena::releaseSlab(void *ptr)
{
    std::free(ptr);
}

void *
NumaArena::carveSlabOnSocket(std::size_t bytes, int socket)
{
    return allocOnSocket(bytes, socket);
}

void
NumaArena::free(void *ptr)
{
    if (ptr == nullptr)
        return;
    std::size_t bytes = 0;
    {
        std::lock_guard<std::mutex> g(sizesMutex);
        auto it = allocSizes().find(ptr);
        NUMAWS_ASSERT(it != allocSizes().end());
        bytes = it->second;
        allocSizes().erase(it);
    }
    _pageMap.unregisterRange(reinterpret_cast<uint64_t>(ptr), bytes);
    std::free(ptr);
}

} // namespace numaws
