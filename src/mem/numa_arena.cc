#include "mem/numa_arena.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "support/panic.h"

namespace numaws {

namespace {

// Track allocation sizes so free() can unregister the exact range.
std::mutex sizesMutex;
std::map<void *, std::size_t> &
allocSizes()
{
    static std::map<void *, std::size_t> sizes;
    return sizes;
}

} // namespace

void *
NumaArena::allocRaw(std::size_t bytes)
{
    // carveSlab is the one raw page-allocation path; registration-
    // tracked blocks add the size bookkeeping free() relies on.
    const std::size_t rounded =
        (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
    void *p = carveSlab(rounded);
    {
        std::lock_guard<std::mutex> g(sizesMutex);
        allocSizes()[p] = rounded;
    }
    return p;
}

void *
NumaArena::allocOnSocket(std::size_t bytes, int socket)
{
    void *p = allocRaw(bytes);
    rebindOnSocket(p, bytes, socket);
    return p;
}

void *
NumaArena::allocInterleaved(std::size_t bytes)
{
    void *p = allocRaw(bytes);
    _pageMap.registerRange(reinterpret_cast<uint64_t>(p), bytes,
                           PagePolicy::Interleaved);
    return p;
}

void *
NumaArena::allocPartitioned(std::size_t bytes, int chunks)
{
    void *p = allocRaw(bytes);
    rebindPartitioned(p, bytes, chunks);
    return p;
}

void
NumaArena::rebindOnSocket(void *ptr, std::size_t bytes, int socket)
{
    _pageMap.registerRange(reinterpret_cast<uint64_t>(ptr), bytes,
                           PagePolicy::Single, socket);
}

void
NumaArena::rebindPartitioned(void *ptr, std::size_t bytes, int chunks)
{
    NUMAWS_ASSERT(chunks > 0);
    const int sockets = _pageMap.numSockets();
    const uint64_t base = reinterpret_cast<uint64_t>(ptr);
    const uint64_t chunk =
        (bytes / chunks + kPageBytes - 1) / kPageBytes * kPageBytes;
    uint64_t offset = 0;
    for (int c = 0; c < chunks && offset < bytes; ++c) {
        const uint64_t len = std::min<uint64_t>(chunk, bytes - offset);
        const int home = c * sockets / chunks;
        _pageMap.registerRange(base + offset, len, PagePolicy::Single, home);
        offset += len;
    }
}

void *
NumaArena::carveSlab(std::size_t bytes)
{
    NUMAWS_ASSERT(bytes > 0);
    const std::size_t rounded =
        (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
    void *p = std::aligned_alloc(kPageBytes, rounded);
    if (p == nullptr)
        NUMAWS_FATAL("out of memory carving a %zu-byte slab", bytes);
    return p;
}

void
NumaArena::releaseSlab(void *ptr)
{
    std::free(ptr);
}

void *
NumaArena::carveSlabOnSocket(std::size_t bytes, int socket)
{
    return allocOnSocket(bytes, socket);
}

void
NumaArena::free(void *ptr)
{
    if (ptr == nullptr)
        return;
    std::size_t bytes = 0;
    {
        std::lock_guard<std::mutex> g(sizesMutex);
        auto it = allocSizes().find(ptr);
        NUMAWS_ASSERT(it != allocSizes().end());
        bytes = it->second;
        allocSizes().erase(it);
    }
    _pageMap.unregisterRange(reinterpret_cast<uint64_t>(ptr), bytes);
    std::free(ptr);
}

} // namespace numaws
