/**
 * @file
 * Page-to-socket home registry — the library's substitute for the kernel's
 * physical page placement (`mmap` + `mbind` in the paper, Section III-A).
 *
 * On the paper's machine the OS records which socket's DRAM backs each
 * physical page. Inside a single-node container we keep that mapping
 * ourselves: allocators register address ranges with a home socket (or an
 * interleave policy), and the memory model consults the registry to decide
 * whether an access is local or remote. The granularity is 4 KB pages,
 * exactly as the paper notes ("one must specify data allocation in page
 * granularity").
 */
#ifndef NUMAWS_MEM_PAGE_MAP_H
#define NUMAWS_MEM_PAGE_MAP_H

#include <cstdint>
#include <map>
#include <mutex>

namespace numaws {

/** OS page size assumed by the placement model. */
inline constexpr uint64_t kPageBytes = 4096;

/** How a registered range maps pages to sockets. */
enum class PagePolicy : uint8_t {
    /** Every page homed on one socket. */
    Single,
    /** Pages round-robined across sockets page-by-page (numactl -i). */
    Interleaved,
    /**
     * First-touch stand-in: serial initialization faults every page from
     * the first worker, so the whole range lands on socket 0.
     */
    FirstTouch,
};

/**
 * Thread-safe interval registry mapping addresses to home sockets.
 *
 * Addresses are opaque 64-bit keys: the real runtime registers actual
 * pointers; the simulator registers synthetic region bases. Both resolve
 * through the same code so placement semantics cannot diverge.
 */
class PageMap
{
  public:
    explicit PageMap(int num_sockets) : _numSockets(num_sockets) {}

    /**
     * Register [base, base+bytes) with @p policy. For PagePolicy::Single,
     * @p home_socket names the owning socket; for the other policies it is
     * ignored. Overlapping re-registration replaces the overlapped part
     * (matching repeated mbind calls).
     */
    void registerRange(uint64_t base, uint64_t bytes, PagePolicy policy,
                       int home_socket = 0);

    /** Remove any registration covering [base, base+bytes). */
    void unregisterRange(uint64_t base, uint64_t bytes);

    /**
     * Home socket of the page containing @p addr; unknown addresses
     * default to socket 0 (the first-touch outcome for a serial program).
     */
    int homeOf(uint64_t addr) const;

    /**
     * homeOf restricted to registered ranges: returns -1 when no
     * registration covers @p addr. Placement decisions (spawn-time
     * hints) need the distinction — homeOf's socket-0 default for
     * unknown addresses is indistinguishable from a real socket-0 home
     * and would herd every unregistered spawn onto one socket.
     */
    int registeredHomeOf(uint64_t addr) const;

    int numSockets() const { return _numSockets; }

    /** Number of registered ranges (test hook). */
    std::size_t rangeCount() const;

  private:
    struct Range
    {
        uint64_t end;
        PagePolicy policy;
        int home;
    };

    int
    resolve(const Range &r, uint64_t base, uint64_t addr) const
    {
        switch (r.policy) {
          case PagePolicy::Single:
            return r.home;
          case PagePolicy::Interleaved:
            return static_cast<int>(((addr - base) / kPageBytes)
                                    % static_cast<uint64_t>(_numSockets));
          case PagePolicy::FirstTouch:
            return 0;
        }
        return 0;
    }

    int _numSockets;
    mutable std::mutex _mutex;
    std::map<uint64_t, Range> _ranges; // keyed by range base
};

} // namespace numaws

#endif // NUMAWS_MEM_PAGE_MAP_H
