/**
 * @file
 * Memory latency model for the simulated machine.
 *
 * Calibrated to the paper's qualitative description (Section I): "tens of
 * cycles (serviced from the local LLC), over a hundred cycles (serviced
 * from a local DRAM or a remote LLC), or a few hundreds of cycles
 * (serviced from a remote DRAM)" — with remote costs growing with QPI hop
 * count.
 */
#ifndef NUMAWS_MEM_LATENCY_MODEL_H
#define NUMAWS_MEM_LATENCY_MODEL_H

#include <cstdint>

namespace numaws {

/** Where an access was serviced from (for stats and tests). */
enum class AccessLevel : uint8_t {
    LocalLlc,
    LocalDram,
    RemoteLlc,
    RemoteDram,
};

/** Per-cache-line latencies in cycles; defaults follow the paper's prose. */
struct LatencyModel
{
    double localLlcCycles = 40.0;
    double localDramCycles = 150.0;
    double remoteLlcCycles = 180.0;
    double remoteDramCycles = 300.0;
    /** Extra cycles per additional QPI hop beyond the first. */
    double perExtraHopCycles = 60.0;
    /**
     * Streaming discount: within a contiguous access, lines after the
     * first of each granule cost this fraction of the full latency
     * (hardware prefetch + DRAM open-page hits overlap them).
     */
    double streamFraction = 0.3;

    /**
     * Cycles to service one cache line.
     * @param hit line present in the accessor socket's LLC.
     * @param hops QPI hops between accessor socket and the line's home
     *        (0 == same socket). For LLC hits hops is irrelevant: the
     *        line already lives in the local LLC.
     */
    double
    lineCost(bool hit, int hops) const
    {
        if (hit)
            return localLlcCycles;
        if (hops == 0)
            return localDramCycles;
        return remoteDramCycles + perExtraHopCycles * (hops - 1);
    }

    AccessLevel
    classify(bool hit, int hops) const
    {
        if (hit)
            return AccessLevel::LocalLlc;
        return hops == 0 ? AccessLevel::LocalDram : AccessLevel::RemoteDram;
    }
};

} // namespace numaws

#endif // NUMAWS_MEM_LATENCY_MODEL_H
