#include "mem/page_map.h"

#include "support/panic.h"

namespace numaws {

void
PageMap::registerRange(uint64_t base, uint64_t bytes, PagePolicy policy,
                       int home_socket)
{
    NUMAWS_ASSERT(bytes > 0);
    NUMAWS_ASSERT(home_socket >= 0 && home_socket < _numSockets);
    std::lock_guard<std::mutex> g(_mutex);

    const uint64_t end = base + bytes;
    // Trim or split any existing ranges overlapping [base, end).
    auto it = _ranges.upper_bound(base);
    if (it != _ranges.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > base) {
            // prev overlaps the new range start; split it.
            Range tail = prev->second;
            prev->second.end = base;
            if (tail.end > end)
                _ranges[end] = tail; // surviving right part
            if (prev->second.end == prev->first)
                _ranges.erase(prev);
        }
    }
    it = _ranges.lower_bound(base);
    while (it != _ranges.end() && it->first < end) {
        if (it->second.end <= end) {
            it = _ranges.erase(it);
        } else {
            Range tail = it->second;
            _ranges.erase(it);
            _ranges[end] = tail;
            break;
        }
    }
    _ranges[base] = Range{end, policy, home_socket};
}

void
PageMap::unregisterRange(uint64_t base, uint64_t bytes)
{
    // Re-registering as FirstTouch then erasing keeps the splitting logic
    // in one place.
    registerRange(base, bytes, PagePolicy::FirstTouch, 0);
    std::lock_guard<std::mutex> g(_mutex);
    _ranges.erase(base);
}

int
PageMap::homeOf(uint64_t addr) const
{
    std::lock_guard<std::mutex> g(_mutex);
    auto it = _ranges.upper_bound(addr);
    if (it == _ranges.begin())
        return 0;
    --it;
    if (addr >= it->second.end)
        return 0;
    return resolve(it->second, it->first, addr);
}

int
PageMap::registeredHomeOf(uint64_t addr) const
{
    std::lock_guard<std::mutex> g(_mutex);
    auto it = _ranges.upper_bound(addr);
    if (it == _ranges.begin())
        return -1;
    --it;
    if (addr >= it->second.end)
        return -1;
    return resolve(it->second, it->first, addr);
}

std::size_t
PageMap::rangeCount() const
{
    std::lock_guard<std::mutex> g(_mutex);
    return _ranges.size();
}

} // namespace numaws
