/**
 * @file
 * Serving mode: submit a mixed stream of independent jobs through the
 * open-loop front door and read back per-job latency percentiles.
 *
 *   ./serve_mixed [--workers=N] [--jobs=J] [--gap-us=G]
 *
 * Three job classes share the runtime: latency-class fib requests,
 * normal-class heat smoothing with a place hint, and batch-class
 * matmul. The admission queue serves Latency before Normal before
 * Batch; between arrivals the elastic pool parks idle workers, so a
 * mostly-idle server costs almost no CPU.
 */
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "numaws.h"
#include "support/cli.h"
#include "workloads/workloads.h"

using namespace numaws;

namespace {

/** Latency-class request: a small fork-join fib. */
uint64_t
fibBody(int n)
{
    if (n <= 12)
        return workloads::fibSerial(n);
    uint64_t a = 0;
    uint64_t b = 0;
    TaskGroup tg;
    tg.spawn([&a, n] { a = fibBody(n - 1); });
    b = fibBody(n - 2);
    tg.sync();
    return a + b;
}

/** Normal-class request: a few steps of 2-D heat smoothing. */
void
heatBody(std::vector<double> &a, std::vector<double> &b, int nx, int ny)
{
    for (int step = 0; step < 2; ++step) {
        parallelForRange(1, ny - 1, 8, [&](int64_t y0, int64_t y1) {
            for (int64_t y = y0; y < y1; ++y)
                for (int x = 1; x < nx - 1; ++x)
                    b[static_cast<std::size_t>(y) * nx + x] =
                        0.25
                        * (a[static_cast<std::size_t>(y) * nx + x - 1]
                           + a[static_cast<std::size_t>(y) * nx + x + 1]
                           + a[static_cast<std::size_t>(y - 1) * nx + x]
                           + a[static_cast<std::size_t>(y + 1) * nx + x]);
        });
        a.swap(b);
    }
}

/** Batch-class request: a small row-parallel matmul. */
double
matmulBody(int n)
{
    std::vector<double> A(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> B(static_cast<std::size_t>(n) * n, 2.0);
    std::vector<double> C(static_cast<std::size_t>(n) * n, 0.0);
    parallelForRange(0, n, 4, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i)
            for (int k = 0; k < n; ++k)
                for (int j = 0; j < n; ++j)
                    C[static_cast<std::size_t>(i) * n + j] +=
                        A[static_cast<std::size_t>(i) * n + k]
                        * B[static_cast<std::size_t>(k) * n + j];
    });
    return C[0];
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    RuntimeOptions opts;
    opts.numWorkers = static_cast<int>(cli.getInt("workers", 4));
    opts.numPlaces = 2;
    const int jobs = static_cast<int>(cli.getInt("jobs", 60));
    const auto gap =
        std::chrono::microseconds(cli.getInt("gap-us", 500));
    Runtime rt(opts);

    std::printf("serving %d jobs on %d workers (%s arrivals)\n", jobs,
                rt.numWorkers(), gap.count() > 0 ? "paced" : "back-to-back");

    std::vector<JobHandle> handles;
    handles.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) {
        switch (i % 3) {
          case 0: // interactive request: strict priority over the rest
            handles.push_back(rt.submit([] { fibBody(20); },
                                        {kAnyPlace, JobClass::Latency}));
            break;
          case 1: { // place-hinted request: root starts on its data's
                    // socket, spawns inherit the hint
            const Place p = static_cast<Place>(i % rt.numPlaces());
            handles.push_back(rt.submit(
                [] {
                    std::vector<double> a(64 * 64, 1.0);
                    std::vector<double> b(a.size(), 0.0);
                    heatBody(a, b, 64, 64);
                },
                {p, JobClass::Normal}));
            break;
          }
          default: // throughput work: runs when nothing hotter queues
            handles.push_back(rt.submit([] { matmulBody(48); },
                                        {kAnyPlace, JobClass::Batch}));
        }
        std::this_thread::sleep_for(gap);
    }

    // Overload-protection controls, per job: a deadline resolves the
    // job Expired if it cannot start (or reach a spawn/sync boundary)
    // in time, and cancel() resolves a queued job without running it —
    // a running one unwinds at its next boundary.
    JobOptions tight;
    tight.cls = JobClass::Latency;
    tight.deadlineNs = 50'000; // 50us: hopeless behind a full queue
    JobHandle deadlined = rt.submit([] { fibBody(20); }, tight);
    JobHandle doomed = rt.submit([] { matmulBody(48); },
                                 {kAnyPlace, JobClass::Batch});
    doomed.cancel();

    for (JobHandle &h : handles)
        h.wait();
    deadlined.wait();
    doomed.wait();
    std::printf("deadlined job: %s, cancelled job: %s\n",
                jobOutcomeName(deadlined.outcome()),
                jobOutcomeName(doomed.outcome()));

    // Per-job decomposition from the handle...
    const JobHandle &last = handles.back();
    std::printf("last job: latency=%.1fus queue=%.1fus exec=%.1fus\n",
                last.latencyNs() / 1e3, last.queueNs() / 1e3,
                last.execNs() / 1e3);

    // ...and aggregate percentiles from the runtime's histograms.
    const RuntimeStats s = rt.stats();
    std::printf("%-8s %8s %10s %10s %10s\n", "class", "jobs", "p50_us",
                "p99_us", "max_us");
    for (int c = 0; c < kNumJobClasses; ++c) {
        const LatencyHist &h = s.jobLatencyByClass[c];
        if (h.count() == 0)
            continue;
        std::printf("%-8s %8llu %10.1f %10.1f %10.1f\n",
                    jobClassName(static_cast<JobClass>(c)),
                    static_cast<unsigned long long>(h.count()),
                    h.quantile(0.50) / 1e3, h.quantile(0.99) / 1e3,
                    static_cast<double>(h.max()) / 1e3);
    }
    std::printf("elastic pool: parks=%llu wakes=%llu parked=%.1fms\n",
                static_cast<unsigned long long>(s.counters.parks),
                static_cast<unsigned long long>(s.counters.parkWakes),
                s.counters.parkedNs / 1e6);
    return 0;
}
