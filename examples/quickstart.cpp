/**
 * @file
 * Quickstart: create a runtime, spawn tasks, sync, use parallel loops.
 *
 *   ./quickstart [--workers=N] [--places=P]
 */
#include <cstdio>
#include <numeric>
#include <vector>

#include "numaws.h"
#include "support/cli.h"
#include "workloads/workloads.h"

using namespace numaws;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    RuntimeOptions opts;
    opts.numWorkers = static_cast<int>(cli.getInt("workers", 4));
    opts.numPlaces = static_cast<int>(cli.getInt("places", 2));
    Runtime rt(opts);

    std::printf("NUMA-WS quickstart: %d workers across %d places\n",
                rt.numWorkers(), rt.numPlaces());

    // 1. Fork-join with TaskGroup (cilk_spawn / cilk_sync).
    const uint64_t fib = workloads::fibParallel(rt, 30, 18);
    std::printf("fib(30) = %llu\n", static_cast<unsigned long long>(fib));

    // 2. Parallel loop.
    std::vector<double> v(1 << 20, 1.0);
    rt.run([&] {
        parallelFor(0, static_cast<int64_t>(v.size()), 4096,
                    [&](int64_t i) { v[static_cast<std::size_t>(i)] *= 2.0; });
    });
    std::printf("sum after doubling = %.0f\n",
                std::accumulate(v.begin(), v.end(), 0.0));

    // 3. Locality hints: run one task per place.
    rt.run([&] {
        TaskGroup tg;
        for (Place p = 0; p < rt.numPlaces(); ++p)
            tg.spawn(
                [p] {
                    std::printf("  task hinted at place %d ran on place "
                                "%d\n",
                                p, currentPlace());
                },
                p);
        tg.sync();
    });

    // 4. Scheduler statistics.
    const RuntimeStats s = rt.stats();
    std::printf("spawns=%llu steals=%llu mailboxTakes=%llu pushes=%llu\n",
                static_cast<unsigned long long>(s.counters.spawns),
                static_cast<unsigned long long>(s.counters.steals),
                static_cast<unsigned long long>(s.counters.mailboxTakes),
                static_cast<unsigned long long>(
                    s.counters.pushbackSuccesses));
    return 0;
}
