/**
 * @file
 * The paper's Figure 4 program: parallel mergesort with locality hints.
 * Quarter i of the array is sorted at virtual place i; the data is
 * partitioned across sockets to match (NumaArena::allocPartitioned); the
 * final merge runs @ANY.
 *
 *   ./mergesort_places [--n=2000000] [--workers=4] [--places=2]
 */
#include <algorithm>
#include <cstdio>

#include "mem/numa_arena.h"
#include "numaws.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/timing.h"
#include "workloads/workloads.h"

using namespace numaws;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int64_t n = cli.getInt("n", 2000000);
    RuntimeOptions opts;
    opts.numWorkers = static_cast<int>(cli.getInt("workers", 4));
    opts.numPlaces = static_cast<int>(cli.getInt("places", 2));
    Runtime rt(opts);

    // Partitioned allocation: quarter i of `in`/`tmp` lives on the socket
    // of place i (on a real NUMA kernel this is mmap+mbind; here the
    // registration drives the same co-location decisions).
    PageMap page_map(rt.numPlaces());
    NumaArena arena(page_map);
    auto *in = static_cast<int64_t *>(
        arena.allocPartitioned(static_cast<std::size_t>(n) * 8, 4));
    auto *tmp = static_cast<int64_t *>(
        arena.allocPartitioned(static_cast<std::size_t>(n) * 8, 4));

    Rng rng(1);
    for (int64_t i = 0; i < n; ++i)
        in[i] = static_cast<int64_t>(rng.next() >> 8);

    workloads::CilksortParams params;
    params.n = n;

    WallTimer timer;
    workloads::cilksortParallel(rt, in, n, tmp, params, /*hints=*/true);
    const double secs = timer.seconds();

    std::printf("sorted %lld elements in %.3f s (%s)\n",
                static_cast<long long>(n), secs,
                std::is_sorted(in, in + n) ? "sorted: OK"
                                           : "sorted: FAILED");
    const RuntimeStats s = rt.stats();
    std::printf("hinted tasks on their place: %llu/%llu\n",
                static_cast<unsigned long long>(
                    s.counters.tasksOnHintedPlace),
                static_cast<unsigned long long>(s.counters.tasksExecuted));
    arena.free(in);
    arena.free(tmp);
    return 0;
}
