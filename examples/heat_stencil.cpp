/**
 * @file
 * Heat diffusion with place-partitioned rows: the iterative stencil whose
 * cross-step reuse is what NUMA-aware scheduling preserves. Prints the
 * runtime's steal/pushback statistics afterwards.
 *
 *   ./heat_stencil [--nx=1024] [--ny=1024] [--steps=20] [--workers=4]
 *                  [--places=2] [--hints=true]
 */
#include <cstdio>
#include <vector>

#include "numaws.h"
#include "support/cli.h"
#include "support/timing.h"
#include "workloads/workloads.h"

using namespace numaws;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    workloads::HeatParams p;
    p.nx = cli.getInt("nx", 1024);
    p.ny = cli.getInt("ny", 1024);
    p.steps = cli.getInt("steps", 20);
    p.baseRows = cli.getInt("base-rows", 16);
    const bool hints = cli.getBool("hints", true);

    RuntimeOptions opts;
    opts.numWorkers = static_cast<int>(cli.getInt("workers", 4));
    opts.numPlaces = static_cast<int>(cli.getInt("places", 2));
    Runtime rt(opts);

    const std::size_t cells = static_cast<std::size_t>(p.nx)
                              * static_cast<std::size_t>(p.ny);
    std::vector<double> a(cells, 0.0), b(cells, 0.0);
    // Hot edge, cold interior.
    for (int64_t j = 0; j < p.ny; ++j)
        a[static_cast<std::size_t>(j)] = 100.0;

    WallTimer timer;
    workloads::heatParallel(rt, a.data(), b.data(), p, hints);
    const double secs = timer.seconds();

    const double *result = (p.steps % 2 == 0) ? a.data() : b.data();
    double total = 0.0;
    for (std::size_t i = 0; i < cells; ++i)
        total += result[i];
    std::printf("heat %lldx%lld x%lld steps in %.3f s (hints=%s), "
                "total heat %.2f\n",
                static_cast<long long>(p.nx),
                static_cast<long long>(p.ny),
                static_cast<long long>(p.steps), secs,
                hints ? "on" : "off", total);

    const RuntimeStats s = rt.stats();
    std::printf("steals=%llu mailboxTakes=%llu pushbacks=%llu/%llu\n",
                static_cast<unsigned long long>(s.counters.steals),
                static_cast<unsigned long long>(s.counters.mailboxTakes),
                static_cast<unsigned long long>(
                    s.counters.pushbackSuccesses),
                static_cast<unsigned long long>(
                    s.counters.pushbackAttempts));
    return 0;
}
