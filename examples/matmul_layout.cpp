/**
 * @file
 * The data layout transformation of Section III-C: multiply matrices in
 * row-major versus blocked Z-Morton layout and compare wall time on the
 * host. Demonstrates the BlockedZMatrix API: transform, bind blocks to
 * sockets, compute, transform back.
 *
 *   ./matmul_layout [--n=512] [--block=32] [--workers=4]
 */
#include <cstdio>
#include <vector>

#include "layout/blocked_matrix.h"
#include "numaws.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/timing.h"
#include "workloads/workloads.h"

using namespace numaws;

namespace {

/** C += A * B over blocked-Z matrices, recursing on block indices. */
void
matmulZ(const BlockedZMatrix<double> &a, const BlockedZMatrix<double> &b,
        BlockedZMatrix<double> &c, uint32_t bi, uint32_t bj, uint32_t bk,
        uint32_t s)
{
    const uint32_t blk = a.block();
    if (s == 1) {
        const double *ap = a.blockPtr(bi, bk);
        const double *bp = b.blockPtr(bk, bj);
        double *cp = c.blockPtr(bi, bj);
        for (uint32_t i = 0; i < blk; ++i)
            for (uint32_t k = 0; k < blk; ++k) {
                const double aik = ap[i * blk + k];
                for (uint32_t j = 0; j < blk; ++j)
                    cp[i * blk + j] += aik * bp[k * blk + j];
            }
        return;
    }
    const uint32_t h = s / 2;
    for (int half = 0; half < 2; ++half) {
        TaskGroup tg;
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                tg.spawn([&, i, j, half] {
                    matmulZ(a, b, c, bi + i * h, bj + j * h,
                            bk + half * h, h);
                });
        tg.sync();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const uint32_t n = static_cast<uint32_t>(cli.getInt("n", 512));
    const uint32_t block = static_cast<uint32_t>(cli.getInt("block", 32));
    RuntimeOptions opts;
    opts.numWorkers = static_cast<int>(cli.getInt("workers", 4));
    opts.numPlaces = static_cast<int>(cli.getInt("places", 2));
    Runtime rt(opts);

    std::vector<double> a(static_cast<std::size_t>(n) * n);
    std::vector<double> b(a.size());
    std::vector<double> c_row(a.size(), 0.0);
    Rng rng(3);
    for (auto &x : a)
        x = rng.nextDouble();
    for (auto &x : b)
        x = rng.nextDouble();

    // Row-major baseline.
    workloads::MatmulParams mp;
    mp.n = n;
    mp.block = block;
    WallTimer t_row;
    workloads::matmulParallel(rt, a.data(), b.data(), c_row.data(), mp,
                              false);
    const double row_secs = t_row.seconds();

    // Blocked Z-Morton: transform in, bind blocks to sockets, multiply,
    // transform out.
    BlockedZMatrix<double> az(n, block), bz(n, block), cz(n, block);
    PageMap pm(rt.numPlaces());
    NumaArena arena(pm);
    az.fromRowMajor(a.data());
    bz.fromRowMajor(b.data());
    az.bindBlocksToSockets(arena, rt.numPlaces());
    bz.bindBlocksToSockets(arena, rt.numPlaces());
    cz.bindBlocksToSockets(arena, rt.numPlaces());
    WallTimer t_z;
    rt.run([&] { matmulZ(az, bz, cz, 0, 0, 0, n / block); });
    const double z_secs = t_z.seconds();

    // Verify the two layouts agree.
    std::vector<double> c_z(a.size());
    cz.toRowMajor(c_z.data());
    double max_err = 0.0;
    for (std::size_t i = 0; i < c_z.size(); ++i)
        max_err = std::max(max_err, std::abs(c_z[i] - c_row[i]));

    std::printf("matmul %ux%u (block %u): row-major %.3f s, "
                "blocked Z-Morton %.3f s (%.2fx), max |diff| %.2e\n",
                n, n, block, row_secs, z_secs, row_secs / z_secs,
                max_err);
    return max_err < 1e-9 ? 0 : 1;
}
