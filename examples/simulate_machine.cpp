/**
 * @file
 * Drive the simulated 32-core NUMA machine directly: pick a benchmark,
 * a scheduler (classic Cilk-Plus-style or NUMA-WS), a placement, and a
 * core count; print the topology (Figure 1) and the run's breakdown.
 *
 *   ./simulate_machine [--workload=heat] [--cores=32]
 *                      [--scheduler=numaws|classic]
 *                      [--placement=partitioned|interleaved|firsttouch]
 *                      [--hints=true] [--scale=0.25]
 */
#include <cstdio>

#include "sim/scheduler.h"
#include "support/cli.h"
#include "workloads/workloads.h"

using namespace numaws;
using namespace numaws::workloads;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const std::string name = cli.getString("workload", "heat");
    const int cores = static_cast<int>(cli.getInt("cores", 32));
    const std::string sched = cli.getString("scheduler", "numaws");
    const std::string place_s = cli.getString("placement", "partitioned");
    const bool hints = cli.getBool("hints", true);
    const double scale = cli.getDouble("scale", 0.25);

    const Machine machine = Machine::paperMachineSubset(cores);
    std::printf("%s", machine.describe().c_str());

    Placement placement = Placement::Partitioned;
    if (place_s == "interleaved")
        placement = Placement::Interleaved;
    else if (place_s == "firsttouch")
        placement = Placement::FirstTouch;
    else if (place_s != "partitioned")
        NUMAWS_FATAL("unknown placement '%s'", place_s.c_str());

    const sim::SimConfig cfg = sched == "classic"
                                   ? sim::SimConfig::classicWs()
                                   : sim::SimConfig::numaWs();

    for (const SimWorkload &wl : simWorkloads(scale)) {
        if (wl.name != name)
            continue;
        std::printf("workload %s (%s), %d cores, %s scheduler, %s "
                    "placement, hints %s\n",
                    wl.name.c_str(), wl.inputDesc.c_str(), cores,
                    sched.c_str(), place_s.c_str(),
                    hints ? "on" : "off");
        const auto dag =
            wl.build(machine.numSockets(), placement, hints);
        const sim::WorkSpan ws = dag.workSpan(cfg.spawnCost, 0.0);
        std::printf("dag: %zu frames, %zu strands, parallelism %.0f\n",
                    dag.numFrames(), dag.numStrands(), ws.work / ws.span);
        const sim::SimResult r = sim::simulate(dag, machine, cores, cfg);
        std::printf("%s\n", r.summary().c_str());
        std::printf("  elapsed %.4f s | work %.4f s | sched %.4f s | "
                    "idle %.4f s\n",
                    r.elapsedSeconds, r.workSeconds, r.schedSeconds,
                    r.idleSeconds);
        return 0;
    }
    NUMAWS_FATAL("unknown workload '%s' (try cg, cilksort, heat, hull1, "
                 "hull2, matmul, matmul-z, strassen, strassen-z)",
                 name.c_str());
}
